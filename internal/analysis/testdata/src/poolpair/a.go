// Package poolpair exercises the pool-pairing analyzer. The fixtures
// mirror the three real disciplines: a sync.Pool-shaped buffer pool
// (framePool), a scratch arena with lowercase get/put and the
// ownership-transfer send protocol (internal/collective), and package
// helper functions (getFrameBuf/putFrameBuf).
package poolpair

type bufPool struct{}

func (p *bufPool) Get() []byte  { return nil }
func (p *bufPool) Put(b []byte) {}

var framePool bufPool

func getFrameBuf() []byte  { return framePool.Get() }
func putFrameBuf(b []byte) { framePool.Put(b) }

// scratchArena matches by type name even when the receiver variable does
// not (sc := ...), exercising the intra-package type-info path.
type scratchArena struct{}

func (s *scratchArena) get(n int) []float64 { return nil }
func (s *scratchArena) put(b []float64)     {}

type msg struct {
	idx  int
	data []float64
}

func sendTo(ch chan msg, m msg) { ch <- m }
func fill(b []byte)             {}

var errDummy = errOf("dummy")

type errOf string

func (e errOf) Error() string { return string(e) }

// leakOnEarlyReturn: the error path drops the buffer.
func leakOnEarlyReturn(fail bool) error {
	b := framePool.Get() // want `pooled buffer assigned to b does not reach a put/release call or ownership-transfer send on every path`
	if fail {
		return errDummy
	}
	framePool.Put(b)
	return nil
}

// leakPastBorrow: lending the buffer to fill does not discharge the Put.
func leakPastBorrow() {
	b := framePool.Get() // want `pooled buffer assigned to b does not reach a put/release call or ownership-transfer send on every path`
	fill(b)
}

// doublePut: released twice on the same path poisons the pool.
func doublePut() {
	b := framePool.Get()
	framePool.Put(b)
	framePool.Put(b) // want `pooled buffer released twice`
}

// reacquireWhileLive: the first withdrawal is overwritten unreleased.
func reacquireWhileLive() {
	b := framePool.Get()
	b = framePool.Get() // want `re-acquiring into b overwrites a pooled buffer`
	framePool.Put(b)
}

// discarded: the withdrawal never lands anywhere.
func discarded() {
	framePool.Get() // want `pooled buffer acquired and immediately discarded`
}

// deferPut: the canonical borrow-scope pattern.
func deferPut(fail bool) error {
	b := framePool.Get()
	defer framePool.Put(b)
	fill(b)
	if fail {
		return errDummy
	}
	return nil
}

// putOnEveryPath: explicit release on both arms.
func putOnEveryPath(fail bool) error {
	b := framePool.Get()
	if fail {
		framePool.Put(b)
		return errDummy
	}
	fill(b)
	framePool.Put(b)
	return nil
}

// arenaSendTransfers: the collective ring step — a send call carrying the
// buffer inside a message literal is the ownership-transfer point, and
// the deposit of the received buffer balances the next withdrawal.
func arenaSendTransfers(sc *scratchArena, ch chan msg, steps int) {
	for s := 0; s < steps; s++ {
		out := sc.get(16)
		sendTo(ch, msg{idx: s, data: out})
		m := <-ch
		sc.put(m.data)
	}
}

// channelSendTransfers: a direct channel send is equally a transfer.
func channelSendTransfers(sc *scratchArena, ch chan msg) {
	out := sc.get(8)
	ch <- msg{data: out}
}

// helperFuncs: package-level get/put helpers pair like methods.
func helperFuncs() {
	b := getFrameBuf()
	fill(b)
	putFrameBuf(b)
}

// goroutineTakesOwnership: the spawned goroutine owns the release.
func goroutineTakesOwnership(done chan struct{}) {
	b := framePool.Get()
	go func() {
		fill(b)
		framePool.Put(b)
		close(done)
	}()
}

// waived: an acknowledged drop, justified (the arena refills on demand).
func waived() {
	b := framePool.Get() //elan:vet-allow poolpair — testdata: demonstrates the waiver pragma
	fill(b)
}
