// Package clean is driver testdata: a package that honors every invariant
// — injected clock, seeded randomness, ctx-taking blocking APIs, no
// blocking under locks — and must produce zero diagnostics.
package clean

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

type Worker struct {
	mu    sync.Mutex
	clk   Clock
	rng   *rand.Rand
	steps chan int
}

func New(clk Clock, seed int64) *Worker {
	return &Worker{
		clk:   clk,
		rng:   rand.New(rand.NewSource(seed)),
		steps: make(chan int, 8),
	}
}

// Step blocks on the step channel under a caller-supplied context.
func (w *Worker) Step(ctx context.Context) (int, error) {
	select {
	case s := <-w.steps:
		return s, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Jitter draws from the injected seeded source under the lock, releasing
// before any channel work.
func (w *Worker) Jitter() time.Duration {
	w.mu.Lock()
	d := time.Duration(w.rng.Intn(1000)) * time.Millisecond
	w.mu.Unlock()
	return d
}

// Wait sleeps on the injected clock.
func (w *Worker) Wait(ctx context.Context, d time.Duration) error {
	return w.clk.Sleep(ctx, d)
}
