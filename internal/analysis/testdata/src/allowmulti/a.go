// Package allowmulti exercises the comma form of the waiver pragma: one
// `//elan:vet-allow a,b — why` comment silences diagnostics from several
// analyzers on the same line.
package allowmulti

import (
	"fmt"
	"time"
)

// hotTimestamp trips two analyzers on one line — clockpolicy (time.Now
// outside the clock substrate) and hotpathalloc (fmt.Sprintf in a hot
// path) — and waives both with a single comma-form pragma.
//
//elan:hotpath
func hotTimestamp() string {
	return fmt.Sprintf("%d", time.Now().UnixNano()) //elan:vet-allow clockpolicy,hotpathalloc — testdata: comma waiver form covers both analyzers
}

// unwaivedTimestamp is the control: the same double violation without a
// pragma must surface both diagnostics.
//
//elan:hotpath
func unwaivedTimestamp() string {
	return fmt.Sprintf("%d", time.Now().UnixNano())
}
