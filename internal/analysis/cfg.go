package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive layer of the framework: an
// intra-procedural control-flow graph hand-rolled from go/ast, plus a
// small forward-dataflow driver that iterates an abstract state to a
// fixpoint over the graph in reverse postorder. It exists so that
// analyzers can check "on all paths" properties — a span reaches End(), a
// pooled buffer is released exactly once — which per-statement AST walks
// (clockpolicy and friends) structurally cannot express.
//
// The graph is deliberately modest. Blocks hold ast.Nodes (statements,
// plus the condition/tag expressions of control statements) in evaluation
// order. Edges cover if/else, for/range loops with break/continue
// (labeled and not), switch/type-switch with fallthrough, select, goto
// and labels, and return. Three simplifications keep it small and honest:
//
//   - defer is modeled in place: a DeferStmt node sits in its block where
//     it executes its *evaluation*, and analyzers treat a recognized
//     deferred release as discharging the obligation from that point on —
//     which is exactly the "all paths that reach the defer are covered"
//     semantics the ownership checks need.
//   - panic(...), runtime aborts (os.Exit, log.Fatal*, t.Fatal*) and
//     calls that never return end their block with an edge to Exit marked
//     ExitPanic, so liveness checks can skip obligations on abort paths.
//   - expressions inside a statement are not themselves broken into
//     sub-blocks (no short-circuit modeling); transfer functions see
//     whole statements, matching the granularity of the checks.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the single virtual exit block. It holds no nodes; edges
	// into it carry the exit kind of the predecessor.
	Exit *Block
}

// ExitKind says how a block's edge to Exit leaves the function.
type ExitKind uint8

const (
	// ExitNone: the block does not edge to Exit.
	ExitNone ExitKind = iota
	// ExitReturn: an explicit return statement.
	ExitReturn
	// ExitFall: falling off the end of the function body.
	ExitFall
	// ExitPanic: panic or a recognized no-return abort; obligation
	// checks skip these edges.
	ExitPanic
)

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Nodes are statements and control expressions in evaluation order.
	Nodes []ast.Node
	Succs []*Block
	// Exit records how this block leaves the function, when one of its
	// successors is the CFG's Exit block.
	Exit ExitKind
	// Return is the return statement ending the block, when Exit is
	// ExitReturn.
	Return *ast.ReturnStmt
	// unreachable marks blocks synthesized after a terminating statement
	// (return/goto/panic) purely to keep the builder's invariants; they
	// have no predecessors.
	unreachable bool
}

// NewCFG builds the graph for one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{Exit: &Block{Index: -1}}}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	b.terminate(ExitFall, nil)
	return b.cfg
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (break-only)
}

type builder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block // goto / labeled-construct targets
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block with an edge to Exit and opens a fresh
// unreachable block so later statements still land somewhere.
func (b *builder) terminate(kind ExitKind, ret *ast.ReturnStmt) {
	if b.cur.Exit == ExitNone {
		b.cur.Exit = kind
		b.cur.Return = ret
		b.edge(b.cur, b.cfg.Exit)
	}
	nxt := b.newBlock()
	nxt.unreachable = true
	b.cur = nxt
}

// jump ends the current block with an edge to target (break, continue,
// goto) and opens a fresh unreachable block.
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	nxt := b.newBlock()
	nxt.unreachable = true
	b.cur = nxt
}

func (b *builder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

// frameFor finds the innermost frame matching the (possibly empty) label;
// wantContinue restricts to loop frames.
func (b *builder) frameFor(label string, wantContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.terminate(ExitReturn, s)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(label, false); f != nil {
				b.jump(f.breakTo)
			} else {
				b.terminate(ExitPanic, nil) // malformed; treat as abort
			}
		case token.CONTINUE:
			if f := b.frameFor(label, true); f != nil {
				b.jump(f.continueTo)
			} else {
				b.terminate(ExitPanic, nil)
			}
		case token.GOTO:
			b.jump(b.labelBlock(label))
		case token.FALLTHROUGH:
			// Handled by switch construction (case bodies already chain);
			// record nothing.
		}

	case *ast.LabeledStmt:
		// The label names both a goto target and, for loops/switches, the
		// construct for labeled break/continue.
		target := b.labelBlock(s.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, s.Label.Name)
		case *ast.RangeStmt:
			b.rangeStmt(inner, s.Label.Name)
		case *ast.SwitchStmt:
			b.switchStmt(inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			b.typeSwitchStmt(inner, s.Label.Name)
		case *ast.SelectStmt:
			b.selectStmt(inner, s.Label.Name)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isAbortCall(call) {
			b.terminate(ExitPanic, nil)
		}

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	exit := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.cur = head
	if s.Cond != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		b.edge(b.cur, exit)
	}
	body := b.newBlock()
	b.edge(head, body)
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The ranged expression is evaluated once, then the head decides
	// next-iteration vs exit each time around.
	b.cur.Nodes = append(b.cur.Nodes, s.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	exit := b.newBlock()
	b.edge(head, exit)
	body := b.newBlock()
	b.edge(head, body)
	// Key/Value assignment happens at the top of each iteration; hand the
	// whole RangeStmt to transfer functions there.
	head.Nodes = append(head.Nodes, s)
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Tag)
	}
	head := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.edge(head, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, blk := range caseBlocks {
		b.cur = blk
		b.stmtList(clauses[i].Body)
		// fallthrough chains to the next case's body block.
		if fallsThrough(clauses[i].Body) && i+1 < len(caseBlocks) {
			b.edge(b.cur, caseBlocks[i+1])
		} else {
			b.edge(b.cur, exit)
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Assign)
	head := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit})
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: exit})
	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !any {
		// select{} blocks forever: no successors, treat as abort.
		b.cur = head
		b.terminate(ExitPanic, nil)
		return
	}
	b.cur = exit
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// abortFuncs are call names that never return; their blocks exit the
// function as ExitPanic, so all-paths obligations are not checked past
// them (a leaked span on a panic path is the least of the process's
// problems, and t.Fatal paths in tests abort the goroutine).
var abortFuncs = map[string]bool{
	"panic": true, "Exit": true, "Fatal": true, "Fatalf": true,
	"Fatalln": true, "FailNow": true, "Goexit": true, "SkipNow": true,
	"Skip": true, "Skipf": true,
}

func isAbortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return abortFuncs[fun.Sel.Name]
	}
	return false
}

// --- dataflow driver ---

// FlowState is one analyzer-defined abstract state. States are immutable
// from the driver's perspective: Transfer and Join return fresh or reused
// values but must not mutate their receivers in ways that alias other
// blocks' states.
type FlowState interface {
	// Join merges another state into a new state (lattice least upper
	// bound). other may be nil (bottom), meaning "edge not yet reached".
	Join(other FlowState) FlowState
	// Equal reports lattice equality, used to detect the fixpoint.
	Equal(other FlowState) bool
}

// FlowAnalysis is a forward dataflow problem over a CFG.
type FlowAnalysis interface {
	// Entry returns the state on function entry.
	Entry() FlowState
	// Transfer pushes state through one node of a block.
	Transfer(node ast.Node, in FlowState) FlowState
}

// ReversePostorder returns the blocks in reverse postorder from the entry
// block — the iteration order under which forward dataflow on reducible
// graphs converges in few passes. Unreachable blocks are omitted.
func (g *CFG) ReversePostorder() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if s.Index >= 0 && !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(g.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Forward iterates the analysis to a fixpoint and returns each reachable
// block's entry state. The caller replays Transfer over a block's nodes to
// observe intermediate states (the reporting pass).
func (g *CFG) Forward(a FlowAnalysis) map[*Block]FlowState {
	rpo := g.ReversePostorder()
	in := map[*Block]FlowState{}
	if len(rpo) == 0 {
		return in
	}
	in[rpo[0]] = a.Entry()
	// Iterate RPO sweeps until stable. Lattices used here are small
	// (finite powersets per variable), so termination is structural.
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			st, ok := in[blk]
			if !ok {
				continue // unreached so far
			}
			out := st
			for _, n := range blk.Nodes {
				out = a.Transfer(n, out)
			}
			for _, s := range blk.Succs {
				if s == g.Exit {
					continue
				}
				prev, ok := in[s]
				if !ok {
					in[s] = out.Join(nil)
					changed = true
					continue
				}
				joined := prev.Join(out)
				if !joined.Equal(prev) {
					in[s] = joined
					changed = true
				}
			}
		}
	}
	return in
}
