package analysis

import (
	"go/ast"
)

// spanStartFuncs are the telemetry calls that mint an owned *Span. The
// caller that starts a span owns its End: a span that never Ends is never
// handed to the Recorder, so it silently vanishes from traces and — worse
// — from the always-on flight recorder ring that postmortems depend on.
var spanStartFuncs = map[string]bool{
	"StartSpan":       true,
	"StartRemoteSpan": true,
	"StartChild":      true,
	"Child":           true,
	"StartRemote":     true, // telemetry.StartRemote(tr, name, parent)
}

// SpanEnd enforces the span-lifetime contract from DESIGN §6/§11: every
// span acquired via Tracer.StartSpan / StartRemoteSpan / Span.Child /
// telemetry.StartRemote must reach End() on all paths out of the
// acquiring function — either a defer span.End() or an explicit End on
// every return. Handing the span elsewhere (returning it, storing it in a
// struct or context, capturing it in a goroutine) transfers the
// obligation and is accepted; discarding the result outright is reported
// immediately. The check is flow-sensitive over the package's CFG layer,
// so a span Ended on one branch but leaked on the other is caught.
//
// internal/telemetry itself is exempt: the implementation package
// constructs, wraps, and deliberately half-opens spans while testing the
// lifecycle it provides to everyone else.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every Tracer.StartSpan/StartRemoteSpan/Child span must reach End() " +
		"on all paths (defer or every return) or escape to a new owner",
	Run: runSpanEnd,
}

var spanEndSpec = &ownershipSpec{
	what:   "span",
	action: "End()",
	acquire: func(pass *Pass, file *File, call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if !spanStartFuncs[sel.Sel.Name] {
			return false
		}
		// telemetry.StartRemote is a package function; the rest are
		// methods. Distinguish only to keep the import-qualified form
		// from matching unrelated StartRemote methods of other packages
		// less precisely than it could — both shapes are span mints here.
		if sel.Sel.Name == "StartRemote" {
			if id, ok := sel.X.(*ast.Ident); ok {
				return pass.ImportedPath(file, id) == "github.com/elan-sys/elan/internal/telemetry" ||
					(id.Obj == nil && id.Name == "telemetry")
			}
			return false
		}
		return true
	},
	release: func(pass *Pass, file *File, call *ast.CallExpr, obj *ast.Object) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
			return false
		}
		id := directIdent(sel.X)
		return id != nil && id.Obj == obj
	},
	sendReleases:  false, // a span sent on a channel changes owner: escape
	argBorrows:    false, // handing a span to a callee transfers the End obligation
	doubleRelease: false, // End is idempotent by contract
	skipPkg: func(path string) bool {
		return path == "internal/telemetry"
	},
}

func runSpanEnd(pass *Pass) {
	runOwnership(pass, spanEndSpec)
}
