package analysis

import (
	"reflect"
	"testing"
)

// TestClockAllowedPackages pins the clockpolicy allowlist. Growing it would
// quietly exempt a package from the unified-time invariant — timestamps in
// its spans and flight records would stop being exact virtual time — so any
// addition has to be made here, deliberately, too.
func TestClockAllowedPackages(t *testing.T) {
	want := []string{"internal/clock", "internal/simclock"}
	if got := ClockAllowedPackages(); !reflect.DeepEqual(got, want) {
		t.Fatalf("clockpolicy allowlist = %v, want exactly %v", got, want)
	}
}
