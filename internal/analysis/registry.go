package analysis

import "fmt"

// All returns every registered analyzer in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		ClockPolicy,
		CtxBlocking,
		ErrIdentity,
		GlobalRand,
		GoroutineFatal,
		HotPathAlloc,
		LockHeld,
		PoolPair,
		SpanEnd,
	}
}

// ByName resolves a comma-separated list of analyzer names. An empty list
// selects all analyzers.
func ByName(names ...string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %v)", name, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}
