package analysis

import (
	"go/ast"
)

// goexitCalls are testing.T/B methods that call runtime.Goexit. From any
// goroutine other than the one running the test function they terminate
// the wrong goroutine: the test keeps running, the failure may be recorded
// late or not at all, and a hang is masked instead of reported.
var goexitCalls = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

// testingRecvNames are the conventional identifiers for *testing.T,
// *testing.B and testing.TB values in this codebase.
var testingRecvNames = map[string]bool{"t": true, "b": true, "tb": true}

// GoroutineFatal flags t.Fatal/t.Fatalf/t.FailNow (and the Skip family)
// inside goroutines launched by tests. testing.T documents that FailNow
// must be called from the goroutine running the test; from any other
// goroutine it neither stops the test nor reliably reports, so a failing
// assertion in a worker goroutine silently passes. Use t.Error/t.Errorf
// plus a done- or error-channel the test goroutine drains.
//
// Function literals that rebind t/b/tb (for example a t.Run subtest
// callback, which receives its own *testing.T) are exempt for the rebound
// name: calling Fatal on the subtest's own t is correct.
var GoroutineFatal = &Analyzer{
	Name: "goroutinefatal",
	Doc: "forbid t.Fatal/Fatalf/FailNow/Skip* inside go-statement function " +
		"literals in tests; use t.Error plus an error channel",
	Run: runGoroutineFatal,
}

func runGoroutineFatal(pass *Pass) {
	for _, f := range pass.Files {
		if !f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, fl, copySet(testingRecvNames))
			return true
		})
	}
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// checkGoroutineBody walks one function literal running on a test-spawned
// goroutine, flagging Goexit-calling methods on any identifier still bound
// to the test's own T/B. Nested literals are walked too (they execute on
// this goroutine unless relaunched), minus any names they rebind.
func checkGoroutineBody(pass *Pass, fl *ast.FuncLit, suspect map[string]bool) {
	for name := range reboundNames(fl) {
		delete(suspect, name)
	}
	if len(suspect) == 0 {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkGoroutineBody(pass, n, copySet(suspect))
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !goexitCalls[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && suspect[id.Name] {
				pass.Reportf(n.Pos(),
					"%s.%s inside a goroutine does not stop the test and masks the failure; use %s.Error and signal via a channel",
					id.Name, sel.Sel.Name, id.Name)
			}
		}
		return true
	})
}

// reboundNames returns parameter names of fl that shadow the suspect set —
// e.g. the t of a t.Run subtest callback, which is a fresh *testing.T that
// may legitimately Fatal.
func reboundNames(fl *ast.FuncLit) map[string]bool {
	out := map[string]bool{}
	if fl.Type.Params == nil {
		return out
	}
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			if testingRecvNames[name.Name] {
				out[name.Name] = true
			}
		}
	}
	return out
}
