package analysis_test

import (
	"strings"
	"testing"

	"github.com/elan-sys/elan/internal/analysis"
	"github.com/elan-sys/elan/internal/analysis/analysistest"
)

const testdata = "testdata/src"

func TestClockPolicy(t *testing.T) {
	analysistest.Run(t, testdata, "clockpolicy", analysis.ClockPolicy)
}

func TestClockPolicyAllowlistedPackage(t *testing.T) {
	// The same kind of code, loaded under the allowlisted internal/clock
	// path, yields no diagnostics: the substrate may touch time directly.
	analysistest.Run(t, testdata, "internal/clock", analysis.ClockPolicy)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, testdata, "globalrand", analysis.GlobalRand)
}

func TestCtxBlocking(t *testing.T) {
	analysistest.Run(t, testdata, "ctxblocking", analysis.CtxBlocking)
}

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, testdata, "lockheld", analysis.LockHeld)
}

func TestGoroutineFatal(t *testing.T) {
	analysistest.Run(t, testdata, "goroutinefatal", analysis.GoroutineFatal)
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, testdata, "spanend", analysis.SpanEnd)
}

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, testdata, "poolpair", analysis.PoolPair)
}

func TestErrIdentity(t *testing.T) {
	analysistest.Run(t, testdata, "erridentity", analysis.ErrIdentity)
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, testdata, "hotpathalloc", analysis.HotPathAlloc)
}

// TestCommaWaiverCoversMultipleAnalyzers checks that one
// `//elan:vet-allow a,b — why` pragma silences same-line diagnostics from
// every listed analyzer, and only those: the unwaived control line in the
// same package must still report both.
func TestCommaWaiverCoversMultipleAnalyzers(t *testing.T) {
	pkgs, err := analysis.LoadPackages(testdata, "allowmulti")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analysis.Run(analysis.All(), pkgs)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if !strings.Contains(d.String(), "a.go:25") {
			t.Errorf("diagnostic outside the unwaived control line: %s", d)
		}
	}
	if byAnalyzer["clockpolicy"] != 1 || byAnalyzer["hotpathalloc"] != 1 || len(diags) != 2 {
		t.Fatalf("got %v (%d diagnostics), want exactly one clockpolicy and one hotpathalloc from the control line", byAnalyzer, len(diags))
	}
}

// TestCollectAllows checks the waiver inventory captures positions,
// analyzer lists (including the comma form), and justifications.
func TestCollectAllows(t *testing.T) {
	pkgs, err := analysis.LoadPackages(testdata, "allowmulti")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	allows := analysis.CollectAllows(pkgs)
	if len(allows) != 1 {
		t.Fatalf("got %d waivers, want 1: %+v", len(allows), allows)
	}
	a := allows[0]
	if len(a.Analyzers) != 2 || a.Analyzers[0] != "clockpolicy" || a.Analyzers[1] != "hotpathalloc" {
		t.Errorf("Analyzers = %v, want [clockpolicy hotpathalloc]", a.Analyzers)
	}
	if a.Justification != "testdata: comma waiver form covers both analyzers" {
		t.Errorf("Justification = %q: em-dash clause not captured", a.Justification)
	}
	if a.Pos.Line == 0 || !strings.HasSuffix(a.Pos.Filename, "a.go") {
		t.Errorf("Pos not captured: %+v", a.Pos)
	}
}

// TestCleanPackageYieldsZeroDiagnostics drives the whole suite over a
// package that honors every invariant.
func TestCleanPackageYieldsZeroDiagnostics(t *testing.T) {
	pkgs, err := analysis.LoadPackages(testdata, "clean")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if diags := analysis.Run(analysis.All(), pkgs); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName()
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName() = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	one, err := analysis.ByName("clockpolicy")
	if err != nil || len(one) != 1 || one[0] != analysis.ClockPolicy {
		t.Fatalf("ByName(clockpolicy) = %v, %v", one, err)
	}
	if _, err := analysis.ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("ByName(nope) err = %v, want unknown-analyzer error", err)
	}
}

// TestLoadPackagesRecursive checks ./...-style pattern expansion skips
// testdata directories (otherwise the intentional violations in this very
// package's testdata would fail the tree-wide run).
func TestLoadPackagesRecursive(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := analysis.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded from module root", len(pkgs))
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("testdata package loaded: %s", p.Path)
		}
	}
}
