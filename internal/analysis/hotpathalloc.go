package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc turns the runtime AllocsPerRun guards into compile-time
// enforcement: a function whose doc comment carries the line
//
//	//elan:hotpath
//
// declares itself part of the zero-allocation steady state (DESIGN §9) —
// the tensor *Into kernels, the ddp reducer step, the flight-recorder
// record path, the frame read/write path — and must contain no
// alloc-inducing constructs:
//
//   - make, new
//   - heap composite literals: &T{...}, slice literals, map literals
//     (plain value literals like chunkMsg{...} stay on the stack and are
//     allowed)
//   - append whose destination does not derive from a parameter or
//     receiver (growing caller-owned, pre-sized storage is the sanctioned
//     amortized-zero pattern; growing a fresh local is an allocation)
//   - function literals (closures allocate when they capture)
//   - go statements (a goroutine is an allocation; hot paths dispatch to
//     resident helpers instead)
//   - any fmt.* call (fmt boxes every operand)
//   - string concatenation and string(...)/[]byte(...) conversions
//   - explicit interface boxing via any(...)/interface{}(...) conversions
//
// Cold sub-paths inside a hot function — the first-call make that primes
// an arena, an error return that formats a message — are waived line by
// line with a justified //elan:vet-allow hotpathalloc pragma, which keeps
// every deviation from the zero-alloc contract auditable via
// elan-vet -report-allows. Diagnostics name the construct precisely so
// the fix (or the waiver justification) writes itself.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //elan:hotpath must contain no alloc-inducing " +
		"constructs (make/new/heap literals/append-to-local/closures/fmt/string concat)",
	Run: runHotPathAlloc,
}

// hotpathMarker is the annotation line inside a function's doc comment.
const hotpathMarker = "//elan:hotpath"

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			hp := &hotPathScan{pass: pass, file: f, fd: fd}
			hp.check(fd.Body)
		}
	}
}

// isHotPath reports whether the function's doc comment carries the
// marker.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

type hotPathScan struct {
	pass *Pass
	file *File
	fd   *ast.FuncDecl
}

// paramObjs collects the objects of parameters and receivers; appends
// into storage reachable from these are the sanctioned pattern.
func (hp *hotPathScan) paramObjs() map[*ast.Object]bool {
	out := map[*ast.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if name.Obj != nil {
					out[name.Obj] = true
				}
			}
		}
	}
	add(hp.fd.Recv)
	add(hp.fd.Type.Params)
	add(hp.fd.Type.Results)
	return out
}

func (hp *hotPathScan) check(body *ast.BlockStmt) {
	params := hp.paramObjs()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			hp.pass.Reportf(n.Pos(), "hot path allocates: function literal (closures allocate when they capture); dispatch to a resident helper")
			return false // the literal body is cold by construction
		case *ast.GoStmt:
			hp.pass.Reportf(n.Pos(), "hot path allocates: go statement spawns a goroutine; use a resident worker")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					hp.pass.Reportf(n.Pos(), "hot path allocates: &composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.ArrayType:
				if at := n.Type.(*ast.ArrayType); at.Len == nil {
					hp.pass.Reportf(n.Pos(), "hot path allocates: slice literal")
				}
			case *ast.MapType:
				hp.pass.Reportf(n.Pos(), "hot path allocates: map literal")
			}
		case *ast.CallExpr:
			hp.call(n, params)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && hp.isString(n.X, n.Y) {
				hp.pass.Reportf(n.OpPos, "hot path allocates: string concatenation")
			}
		}
		return true
	})
}

func (hp *hotPathScan) call(call *ast.CallExpr, params map[*ast.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			hp.pass.Reportf(call.Pos(), "hot path allocates: make")
		case "new":
			hp.pass.Reportf(call.Pos(), "hot path allocates: new")
		case "append":
			if len(call.Args) > 0 && !hp.paramDerived(call.Args[0], params) {
				hp.pass.Reportf(call.Pos(), "hot path allocates: append to a non-parameter slice grows fresh storage; append into caller-owned, pre-sized buffers")
			}
		case "string":
			hp.pass.Reportf(call.Pos(), "hot path allocates: string(...) conversion copies")
		case "any":
			hp.pass.Reportf(call.Pos(), "hot path allocates: any(...) boxes its operand")
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if path := hp.pass.ImportedPath(hp.file, id); path == "fmt" {
				hp.pass.Reportf(call.Pos(), "hot path allocates: fmt.%s boxes every operand", fun.Sel.Name)
			}
		}
	case *ast.ParenExpr:
		if _, ok := fun.X.(*ast.InterfaceType); ok {
			hp.pass.Reportf(call.Pos(), "hot path allocates: conversion to interface type boxes its operand")
		}
	case *ast.ArrayType:
		// []byte(s) / []rune(s) conversions copy.
		if fun.Len == nil {
			hp.pass.Reportf(call.Pos(), "hot path allocates: slice conversion copies")
		}
	}
}

// paramDerived reports whether the expression's root identifier is a
// parameter or receiver (s.buf, dst.Data[i:], *bufp all derive).
func (hp *hotPathScan) paramDerived(e ast.Expr, params map[*ast.Object]bool) bool {
	id := rootIdent(e)
	return id != nil && id.Obj != nil && params[id.Obj]
}

// isString reports whether either operand is provably a string: a string
// literal syntactically, or string-typed per the package's type info.
func (hp *hotPathScan) isString(exprs ...ast.Expr) bool {
	for _, e := range exprs {
		if bl, ok := e.(*ast.BasicLit); ok && bl.Kind == token.STRING {
			return true
		}
		if hp.pass.Info != nil {
			if tv, ok := hp.pass.Info.Types[e]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return true
				}
			}
		}
	}
	return false
}
