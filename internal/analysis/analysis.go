// Package analysis is a small, stdlib-only static-analysis framework that
// mechanically enforces the project invariants the runtime's correctness
// claims rest on: all timing flows through an injected clock.Clock, all
// randomness comes from an explicitly seeded source (so chaos and soak runs
// replay byte-identically from a seed), blocking exported APIs are
// cancellable via context.Context, and concurrency patterns known to
// deadlock or mask test failures are rejected at review time.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis — an Analyzer with a Run function over a Pass that reports
// Diagnostics — but is built on go/parser + go/ast + go/types alone, since
// the module carries no external dependencies. Analyzers are registered in
// registry.go, driven by the Run function here, exercised by golden
// `// want "..."` tests under testdata/, and enforced in CI through
// cmd/elan-vet.
//
// Suppression: a finding may be waived on a specific line with a trailing
//
//	//elan:vet-allow <analyzer> — <justification>
//
// comment. Waivers are deliberate, reviewable artifacts: the analyzer name
// must match and the justification is mandatory by convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used by -analyzer flags, pragma
	// suppressions, and diagnostic output.
	Name string
	// Doc is a one-paragraph description of the contract enforced and
	// why it exists.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Diagnostic is a single finding, positioned for `file:line:col: message`
// rendering so CI logs are clickable.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// File is one parsed source file of a package.
type File struct {
	AST *ast.File
	// Name is the file's path as handed to the parser.
	Name string
	// Test reports whether the file is a *_test.go file.
	Test bool
}

// Pass carries one package's parse and type-check results to an analyzer.
// Type information covers non-test files only (test files — including
// external _test packages — are parsed but not type-checked); analyzers
// that inspect test files must work syntactically there.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path relative to the module root,
	// e.g. "internal/transport". Analyzers use it for scope allowlists.
	Path string
	// Files holds every parsed file, test and non-test.
	Files []*File
	// Pkg and Info are the best-effort type-check results. Imports
	// outside the package are stubbed (see load.go), so cross-package
	// member lookups do not resolve; package-name identifiers still
	// resolve to *types.PkgName with correct import paths.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ImportedPath resolves an identifier that syntactically qualifies a
// selector (e.g. the `time` in time.Now) to the import path it names, or
// "" if the identifier is not an imported package name in that position —
// for example when shadowed by a local variable. Resolution prefers type
// info and falls back to the file's import table for files that were not
// type-checked.
func (p *Pass) ImportedPath(file *File, id *ast.Ident) string {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	// Syntactic fallback (test files): reject identifiers the parser
	// resolved to a local object, then consult the import table.
	if id.Obj != nil {
		return ""
	}
	for _, imp := range file.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// allowPragma matches `//elan:vet-allow <name>[,<name>...] — <justification>`
// suppression comments. The analyzer list is mandatory; the em-dash-separated
// justification is captured so the waiver inventory (CollectAllows,
// `elan-vet -report-allows`) can audit it — CI rejects waivers whose
// justification is empty.
// Like Go's own build pragmas, the marker must start the comment — prose
// that merely quotes the syntax does not waive anything.
var allowPragma = regexp.MustCompile(`^//elan:vet-allow\s+([a-z0-9_,]+)(?:\s*—\s*(.*\S))?`)

// suppressed reports whether a diagnostic from the named analyzer is waived
// by a pragma on the same line of the same file.
func suppressed(pkg *Package, d Diagnostic) bool {
	for _, f := range pkg.Files {
		if f.Name != d.Pos.Filename {
			continue
		}
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := allowPragma.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if pkg.Fset.Position(c.Pos()).Line != d.Pos.Line {
					continue
				}
				for _, name := range strings.Split(m[1], ",") {
					if name == d.Analyzer {
						return true
					}
				}
			}
		}
	}
	return false
}

// Allow is one `//elan:vet-allow` waiver pragma found in a package: which
// analyzers it silences, where, and why. An empty Justification means the
// pragma has no `— why` clause and should be rejected by CI.
type Allow struct {
	Pos           token.Position
	Analyzers     []string
	Justification string
}

// CollectAllows inventories every waiver pragma in pkgs, sorted by file then
// line. Waivers are deliberate, reviewable artifacts; surfacing them as a
// single list (`elan-vet -report-allows`) keeps suppressions from rotting
// silently in comment trivia.
func CollectAllows(pkgs []*Package) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					m := allowPragma.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					out = append(out, Allow{
						Pos:           pkg.Fset.Position(c.Pos()),
						Analyzers:     strings.Split(m[1], ","),
						Justification: strings.TrimSpace(m[2]),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// Run executes each analyzer over each package and returns the surviving
// diagnostics sorted by file, line, then column.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
			for _, d := range diags {
				if !suppressed(pkg, d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
