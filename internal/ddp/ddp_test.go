package ddp

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/elan-sys/elan/internal/clock"
	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/racecheck"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/tensor"
	"github.com/elan-sys/elan/internal/topology"
)

var testSizes = []int{4, 9, 7, 3}

// buildNet constructs an MLP with a fixed seed so every "rank" holds
// identical parameters, as data-parallel replicas do.
func buildNet(t testing.TB) *nn.MLP {
	t.Helper()
	net, err := nn.NewMLP(rand.New(rand.NewSource(42)), testSizes)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// batchFor builds rank's (distinct) mini-batch.
func batchFor(t testing.TB, rank int) (*tensor.Matrix, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(100 + int64(rank)))
	x := tensor.MustNew(5, testSizes[0])
	x.Randn(rng, 1)
	labels := make([]int, x.Rows)
	for i := range labels {
		labels[i] = rng.Intn(testSizes[len(testSizes)-1])
	}
	return x, labels
}

// lossGradOf runs forward+loss on net for rank's batch.
func lossGradOf(t testing.TB, net *nn.MLP, rank int) *tensor.Matrix {
	t.Helper()
	x, labels := batchFor(t, rank)
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := net.SoftmaxLoss(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	return grad
}

// rawGrads computes rank's un-reduced flat gradient on a fresh replica.
func rawGrads(t testing.TB, rank int) []float64 {
	t.Helper()
	net := buildNet(t)
	net.ZeroGrads()
	grad := lossGradOf(t, net, rank)
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	return net.FlattenGrads(nil)
}

// reducedGrads steps n replicas through reducers over a fresh group built
// for topo and returns every rank's post-reduction flat gradient.
func reducedGrads(t *testing.T, topo collective.Topology, cfg Config) [][]float64 {
	t.Helper()
	n := topo.Ranks()
	g, err := collective.NewGroupWithTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	out := make([][]float64, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			net := buildNet(t)
			red := New(net, cfg)
			defer red.Close()
			net.ZeroGrads()
			grad := lossGradOf(t, net, r)
			if errs[r] = red.BackwardAllReduce(g, r, grad); errs[r] != nil {
				return
			}
			out[r] = net.FlattenGrads(nil)
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out
}

// clustered builds a Topology with counts[j] consecutive ranks on node j.
func clustered(t *testing.T, counts ...int) collective.Topology {
	t.Helper()
	var place []topology.GPUID
	for node, c := range counts {
		for i := 0; i < c; i++ {
			place = append(place, topology.GPUID{Node: node, Index: i})
		}
	}
	topo, err := collective.NewClustered(place)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func expectBits(t *testing.T, label string, rank int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s rank %d: length %d, want %d", label, rank, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s rank %d elem %d: %v, want %v", label, rank, i, got[i], want[i])
		}
	}
}

// TestDefaultMatchesAllReduceMeanBitwise: with BucketElems == 0 the reducer
// must reproduce the historical Backward + FlattenGrads + AllReduceMean +
// LoadGrads sequence bit for bit — the call-site migration in worker and
// core cannot change training results.
func TestDefaultMatchesAllReduceMeanBitwise(t *testing.T) {
	const n = 4
	legacy := make([][]float64, n)
	{
		g, err := collective.NewGroup(n)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				net := buildNet(t)
				net.ZeroGrads()
				grad := lossGradOf(t, net, r)
				if errs[r] = net.Backward(grad); errs[r] != nil {
					return
				}
				flat := net.FlattenGrads(nil)
				if errs[r] = g.AllReduceMean(r, flat); errs[r] != nil {
					return
				}
				if errs[r] = net.LoadGrads(flat); errs[r] != nil {
					return
				}
				legacy[r] = net.FlattenGrads(nil)
			}()
		}
		wg.Wait()
		g.Close()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("legacy rank %d: %v", r, err)
			}
		}
	}
	bucketed := reducedGrads(t, collective.Flat(n), Config{})
	for r := 0; r < n; r++ {
		expectBits(t, "default-vs-legacy", r, bucketed[r], legacy[r])
	}
}

// TestBucketedMatchesPerBucketReference: with real bucketing, each bucket
// is an independent flat-ring allreduce over its range; the reference
// order spec applied per bucket (then scaled by 1/n) must match the
// reducer bit for bit.
func TestBucketedMatchesPerBucketReference(t *testing.T) {
	const n, bucketElems = 4, 40
	raw := make([][]float64, n)
	for r := 0; r < n; r++ {
		raw[r] = rawGrads(t, r)
	}
	net := buildNet(t)
	plan := New(net, Config{BucketElems: bucketElems})
	defer plan.Close()
	if plan.NumBuckets() < 2 {
		t.Fatalf("bucket plan has %d buckets, want >= 2 (grad elements: %d)",
			plan.NumBuckets(), net.NumParams())
	}
	want := make([]float64, net.NumParams())
	for _, bk := range plan.buckets {
		segs := make([][]float64, n)
		for r := 0; r < n; r++ {
			segs[r] = raw[r][bk.lo:bk.hi]
		}
		ref, err := collective.ReferenceAllReduce(collective.Flat(n), segs)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range ref {
			want[bk.lo+i] = v * (1 / float64(n))
		}
	}
	got := reducedGrads(t, collective.Flat(n), Config{BucketElems: bucketElems})
	for r := 0; r < n; r++ {
		expectBits(t, "bucketed-vs-reference", r, got[r], want)
	}
}

// TestBucketedOnHierarchicalGroup: bucketing composes with the two-tier
// engine; all ranks converge to one gradient, equal to the sequential mean
// within float tolerance.
func TestBucketedOnHierarchicalGroup(t *testing.T) {
	topo := clustered(t, 3, 3) // 6 ranks over 2 nodes
	n := topo.Ranks()
	mean := make([]float64, len(rawGrads(t, 0)))
	for r := 0; r < n; r++ {
		for i, v := range rawGrads(t, r) {
			mean[i] += v / float64(n)
		}
	}
	got := reducedGrads(t, topo, Config{BucketElems: 25})
	for r := 0; r < n; r++ {
		for i := range mean {
			if math.Abs(got[r][i]-mean[i]) > 1e-12 {
				t.Fatalf("rank %d elem %d: %v, want %v", r, i, got[r][i], mean[i])
			}
		}
		expectBits(t, "ranks-agree", r, got[r], got[0])
	}
}

// TestBucketSpansTagged: every bucket's allreduce span carries its bucket
// index, so overlap schedules can be read off a trace.
func TestBucketSpansTagged(t *testing.T) {
	const n = 2
	g, err := collective.NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rec := telemetry.NewRecorder(clock.Wall{}, 64)
	reg := telemetry.NewRegistry()
	g.SetTelemetry(rec, reg, clock.Wall{}, "inproc")
	got := make([][]float64, n)
	var wg sync.WaitGroup
	numBuckets := 0
	var mu sync.Mutex
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			net := buildNet(t)
			red := New(net, Config{BucketElems: 40})
			defer red.Close()
			mu.Lock()
			numBuckets = red.NumBuckets()
			mu.Unlock()
			net.ZeroGrads()
			grad := lossGradOf(t, net, r)
			if err := red.BackwardAllReduce(g, r, grad); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			got[r] = net.FlattenGrads(nil)
		}()
	}
	wg.Wait()
	if numBuckets < 2 {
		t.Fatalf("want >= 2 buckets, got %d", numBuckets)
	}
	seen := map[string]int{}
	for _, sr := range rec.Snapshot() {
		if sr.Name != "collective.allreduce" {
			continue
		}
		b, ok := sr.Attr("bucket")
		if !ok {
			t.Fatalf("allreduce span without bucket tag: %+v", sr.Attrs)
		}
		seen[b]++
		if _, ok := sr.Attr("link"); !ok {
			t.Fatalf("allreduce span without link tag")
		}
	}
	if len(seen) != numBuckets {
		t.Fatalf("spans tag %d distinct buckets, want %d (%v)", len(seen), numBuckets, seen)
	}
	for b, count := range seen {
		if count != n {
			t.Fatalf("bucket %s has %d spans, want %d", b, count, n)
		}
	}
}

// TestReducerSurvivesGroupSwap: one reducer steps across group
// reconstructions (the elastic adjustment pattern) — old group closed, new
// group of a different size passed to the next step.
func TestReducerSurvivesGroupSwap(t *testing.T) {
	net := buildNet(t)
	red := New(net, Config{})
	defer red.Close()
	for _, n := range []int{2, 1, 3} {
		g, err := collective.NewGroup(n)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		// Rank 0 uses the long-lived reducer; other ranks are throwaway.
		for r := 1; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				peerNet := buildNet(t)
				peer := New(peerNet, Config{})
				defer peer.Close()
				peerNet.ZeroGrads()
				grad := lossGradOf(t, peerNet, r)
				errs[r] = peer.BackwardAllReduce(g, r, grad)
			}()
		}
		net.ZeroGrads()
		grad := lossGradOf(t, net, 0)
		errs[0] = red.BackwardAllReduce(g, 0, grad)
		wg.Wait()
		g.Close()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("n=%d rank %d: %v", n, r, err)
			}
		}
	}
}

// TestReducerClosedGroup: stepping against a closed group surfaces
// ErrClosed and leaves the reducer reusable against a healthy group.
func TestReducerClosedGroup(t *testing.T) {
	net := buildNet(t)
	red := New(net, Config{})
	defer red.Close()
	g, err := collective.NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	net.ZeroGrads()
	grad := lossGradOf(t, net, 0)
	if err := red.BackwardAllReduce(g, 0, grad); err == nil {
		t.Fatal("step against closed group succeeded")
	}
	// Single-rank group: reduction is the identity, step must succeed.
	solo, err := collective.NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	net.ZeroGrads()
	grad = lossGradOf(t, net, 0)
	if err := red.BackwardAllReduce(solo, 0, grad); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
}

// TestReducerCloseIdempotent covers the lifecycle corners: closing twice,
// closing a never-started reducer, and stepping after close.
func TestReducerCloseIdempotent(t *testing.T) {
	never := New(buildNet(t), Config{})
	never.Close()
	never.Close()
	used := New(buildNet(t), Config{})
	solo, err := collective.NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	used.net.ZeroGrads()
	grad := lossGradOf(t, used.net, 0)
	if err := used.BackwardAllReduce(solo, 0, grad); err != nil {
		t.Fatal(err)
	}
	used.Close()
	used.Close()
	if err := used.BackwardAllReduce(solo, 0, grad); err == nil {
		t.Fatal("step after Close succeeded")
	}
}

// TestReducerStepZeroAllocs: after workspaces and arenas warm up, a full
// backward + bucketed allreduce + load step allocates nothing.
func TestReducerStepZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	const n = 2
	g, err := collective.NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		net := buildNet(t)
		red := New(net, Config{BucketElems: 40})
		defer red.Close()
		x, labels := batchFor(t, 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			net.ZeroGrads()
			logits, err := net.Forward(x)
			if err != nil {
				return
			}
			_, grad, err := net.SoftmaxLoss(logits, labels)
			if err != nil {
				return
			}
			if err := red.BackwardAllReduce(g, 1, grad); err != nil {
				return
			}
		}
	}()
	net := buildNet(t)
	red := New(net, Config{BucketElems: 40})
	defer red.Close()
	x, labels := batchFor(t, 0)
	step := func() {
		net.ZeroGrads()
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		_, grad, err := net.SoftmaxLoss(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := red.BackwardAllReduce(g, 0, grad); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		step()
	}
	avg := testing.AllocsPerRun(50, step)
	close(stop)
	g.Close()
	wg.Wait()
	if avg != 0 {
		t.Fatalf("%v allocs per bucketed step, want 0", avg)
	}
}
