// Package ddp is the distributed-data-parallel gradient reducer shared by
// the fleet worker and the live-job worker: one implementation of the
// backward-pass → gradient-average → load sequence both previously
// hand-rolled around whole-vector AllReduceMean calls.
//
// The reducer splits the flattened gradient into fixed-capacity buckets
// built by walking the layers in reverse (the order backward completes
// them) and overlaps communication with compute: the moment the last layer
// of a bucket finishes its backward, the bucket's flat range is handed to
// a resident comm goroutine, which allreduces it while the remaining
// layers are still computing — backward of layer N overlaps the allreduce
// of layers above N. With BucketElems == 0 (the default) the plan is a
// single whole-vector bucket, which makes the reducer's arithmetic — and
// its accumulation order — exactly the historical AllReduceMean path.
//
// A Reducer belongs to one worker goroutine; only Close may be called from
// elsewhere, and only after the owner has stopped stepping.
package ddp

import (
	"fmt"

	"github.com/elan-sys/elan/internal/collective"
	"github.com/elan-sys/elan/internal/nn"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/tensor"
)

// Config parametrizes gradient bucketing.
type Config struct {
	// BucketElems caps the element count of each gradient bucket. Buckets
	// are closed greedily in reverse-layer order once they reach the cap,
	// so every bucket except possibly the last (lowest layers) holds at
	// least BucketElems elements. 0 disables bucketing: one whole-vector
	// bucket, no overlap, bit-identical to a whole-vector AllReduceMean.
	BucketElems int
}

// bucket is one contiguous range of the flattened gradient, covering
// layers [lowLayer, highLayer] — ready for reduction as soon as lowLayer's
// backward completes (layers finish in descending order).
type bucket struct {
	lo, hi   int
	lowLayer int
}

// reduceReq names the group and rank a step's buckets reduce over; the
// elastic runtime swaps groups between steps, so they are per-request
// rather than per-reducer state. tc is the causal parent for the step's
// allreduce spans (zero when untraced).
type reduceReq struct {
	g    *collective.Group
	rank int
	tc   telemetry.TraceContext
}

// Reducer owns a network's flattened gradient vector and the bucket plan
// over it.
type Reducer struct {
	net     *nn.MLP
	buckets []bucket
	readyOf []int // readyOf[layer] = bucket to fire when layer completes, else -1
	flat    []float64

	onLayer func(int) error // cached hook: per-step closures would allocate
	fired   int             // buckets signalled so far this step

	started bool
	closed  bool
	req     chan reduceReq
	res     chan error
	ready   chan int
	done    chan struct{}
}

// New builds a reducer for net. The bucket plan is fixed at construction
// (layer shapes never change); the elastic runtime reuses one reducer
// across group reconstructions by passing the current group to each step.
func New(net *nn.MLP, cfg Config) *Reducer {
	nl := net.NumLayers()
	r := &Reducer{
		net:     net,
		readyOf: make([]int, nl),
		flat:    make([]float64, net.NumParams()),
	}
	for i := range r.readyOf {
		r.readyOf[i] = -1
	}
	if cfg.BucketElems <= 0 {
		_, hi := net.GradRange(nl - 1)
		r.buckets = []bucket{{lo: 0, hi: hi, lowLayer: 0}}
		r.readyOf[0] = 0
	} else {
		acc, high := 0, nl-1
		for i := nl - 1; i >= 0; i-- {
			lo, hi := net.GradRange(i)
			acc += hi - lo
			if acc >= cfg.BucketElems || i == 0 {
				blo, _ := net.GradRange(i)
				_, bhi := net.GradRange(high)
				r.buckets = append(r.buckets, bucket{lo: blo, hi: bhi, lowLayer: i})
				r.readyOf[i] = len(r.buckets) - 1
				acc, high = 0, i-1
			}
		}
	}
	r.req = make(chan reduceReq)
	r.res = make(chan error, 1)
	// Buffered to the plan size so the backward pass never blocks on a
	// slow reduction: the hook deposits the bucket index and keeps
	// computing.
	r.ready = make(chan int, len(r.buckets))
	r.done = make(chan struct{})
	r.onLayer = func(layer int) error {
		if err := r.net.FlattenLayerGrads(layer, r.flat); err != nil {
			return err
		}
		if b := r.readyOf[layer]; b >= 0 {
			r.ready <- b
			r.fired++
		}
		return nil
	}
	return r
}

// NumBuckets returns the number of buckets in the reduction plan.
func (r *Reducer) NumBuckets() int { return len(r.buckets) }

// BackwardAllReduce runs the backward pass for lossGrad, averages the
// gradients across g (bucket by bucket, overlapped with the remaining
// backward compute), and loads the averaged gradients back into the
// network. It must be called collectively: every rank of g steps with the
// same bucket plan. Blocking is bounded by g.Close, which aborts in-flight
// reductions with collective.ErrClosed.
//
//elan:hotpath
func (r *Reducer) BackwardAllReduce(g *collective.Group, rank int, lossGrad *tensor.Matrix) error {
	return r.BackwardAllReduceTraced(g, rank, lossGrad, telemetry.TraceContext{})
}

// BackwardAllReduceTraced is BackwardAllReduce with a causal parent
// (typically the rank's step span): the backward compute gets its own child
// span and the overlapped per-bucket allreduce spans become children of the
// same parent, so the trace shows compute and communication side by side.
// A zero tc is the plain uninstrumented path.
//
//elan:hotpath
func (r *Reducer) BackwardAllReduceTraced(g *collective.Group, rank int, lossGrad *tensor.Matrix, tc telemetry.TraceContext) error {
	if r.closed {
		return fmt.Errorf("ddp: reducer closed") //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
	}
	if !r.started {
		r.started = true
		go r.commLoop() //elan:vet-allow hotpathalloc — one-time resident comm-goroutine startup on first step
	}
	return r.step(g, rank, lossGrad, tc)
}

// step submits the request to the comm goroutine, runs backward with the
// bucket hook, and joins the reduction.
//
//elan:hotpath
func (r *Reducer) step(g *collective.Group, rank int, lossGrad *tensor.Matrix, tc telemetry.TraceContext) error {
	r.fired = 0
	r.req <- reduceReq{g: g, rank: rank, tc: tc}
	// The backward span ends before the join below, so the comm-wait tail
	// of the step is attributed to the (overlapping) allreduce spans, not
	// to compute.
	var bspan *telemetry.Span
	if tc.Valid() {
		bspan = telemetry.StartRemote(g.Tracer(), "ddp.backward", tc)
		bspan.AnnotateInt("rank", rank)
	}
	bErr := r.net.BackwardLayers(lossGrad, r.onLayer)
	if bErr != nil {
		bspan.Annotate("error", bErr.Error())
	}
	bspan.End()
	// The comm loop consumes exactly len(buckets) signals per request;
	// if backward bailed early, feed it the rest so this rank still joins
	// every collective its peers are counting on.
	for b := r.fired; b < len(r.buckets); b++ {
		r.ready <- b
	}
	cErr := <-r.res
	if bErr != nil {
		return bErr
	}
	if cErr != nil {
		return cErr
	}
	return r.net.LoadGrads(r.flat)
}

// Close shuts down the comm goroutine and makes the reducer permanently
// unusable. Call only after the owning worker has stopped stepping; safe
// to call repeatedly and on a reducer that never stepped.
func (r *Reducer) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if !r.started {
		return
	}
	close(r.req)
	<-r.done
}

// commLoop is the resident reduction goroutine: one request per step, one
// allreduce per bucket, in plan order.
//
//elan:hotpath
func (r *Reducer) commLoop() {
	defer close(r.done)
	for req := range r.req {
		r.res <- r.runBuckets(req)
	}
}

// runBuckets drains this step's bucket signals in plan order, reducing and
// averaging each range. On error it keeps draining (the signal count per
// step is fixed) and reports the first failure.
//
//elan:hotpath
func (r *Reducer) runBuckets(req reduceReq) error {
	var firstErr error
	inv := 1 / float64(req.g.Size())
	for want := 0; want < len(r.buckets); want++ {
		b := <-r.ready
		if firstErr != nil {
			continue
		}
		if b != want {
			firstErr = fmt.Errorf("ddp: bucket %d signalled, want %d", b, want) //elan:vet-allow hotpathalloc — cold error path, never taken in the zero-alloc steady state
			continue
		}
		bk := r.buckets[b]
		seg := r.flat[bk.lo:bk.hi]
		if err := req.g.AllReduceBucketFrom(req.tc, req.rank, seg, b); err != nil {
			firstErr = err
			continue
		}
		for i := range seg {
			seg[i] *= inv
		}
	}
	return firstErr
}
