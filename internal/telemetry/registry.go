package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/elan-sys/elan/internal/metrics"
)

// histWindow is how many recent observations a Histogram retains for
// quantile estimation; count and sum are exact over the full stream.
const histWindow = 4096

// Counter is a monotonically increasing int64. The nil Counter (from a nil
// Registry) is a valid, allocation-free no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters only
// go up).
//
//elan:hotpath
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
//
//elan:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates float64 observations: exact count and sum over the
// whole stream plus a sliding window of the most recent histWindow samples
// for quantile estimation. The nil Histogram is a valid no-op.
type Histogram struct {
	mu     sync.Mutex
	count  int64
	sum    float64
	window []float64
	next   int // ring cursor once the window is full
}

// Observe records one sample.
//
//elan:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if len(h.window) < histWindow {
		h.window = append(h.window, v)
	} else {
		h.window[h.next] = v
		h.next = (h.next + 1) % histWindow
	}
	h.mu.Unlock()
}

// HistSnapshot is a Histogram's state at one instant.
type HistSnapshot struct {
	// Count and Sum are exact over every observation.
	Count int64
	Sum   float64
	// Summary and Quantiles describe the retained window.
	Summary   metrics.Summary
	Quantiles metrics.Quantiles
}

// Snapshot computes the histogram's statistics (zero value on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	window := make([]float64, len(h.window))
	copy(window, h.window)
	snap := HistSnapshot{Count: h.count, Sum: h.sum}
	h.mu.Unlock()
	snap.Summary = metrics.Summarize(window)
	snap.Quantiles = metrics.QuantilesOf(window)
	return snap
}

// Registry holds named instruments. Components resolve their instruments
// once at construction (Counter/Gauge/Histogram are get-or-create) and use
// them lock-free afterwards. The nil Registry hands out nil instruments,
// so an unconfigured component pays nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WritePrometheus emits a Prometheus text-exposition snapshot of every
// instrument, sorted by name for stable output. Histograms are rendered as
// summaries (quantile series plus _sum and _count). A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n",
			name, name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		snap := hists[name].Snapshot()
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			name,
			name, snap.Quantiles.P50,
			name, snap.Quantiles.P95,
			name, snap.Quantiles.P99,
			name, snap.Sum,
			name, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
