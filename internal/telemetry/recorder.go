package telemetry

import (
	"sort"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// DefaultMaxSpans bounds a Recorder's memory: once this many spans are
// stored, further End calls are counted as dropped instead of recorded.
const DefaultMaxSpans = 1 << 16

// Recorder is the live Tracer: it timestamps spans on an injected
// clock.Clock and stores finished spans for export. It is safe for
// concurrent use by any number of goroutines (each span itself stays on
// one goroutine).
type Recorder struct {
	clk clock.Clock
	max int

	mu      sync.Mutex
	nextID  uint64
	spans   []SpanRecord
	dropped int
}

// NewRecorder builds a Recorder on the given clock. A nil clock selects the
// wall clock; simulated runs inject a *clock.Sim so every timestamp is
// exact virtual time. maxSpans <= 0 selects DefaultMaxSpans.
func NewRecorder(clk clock.Clock, maxSpans int) *Recorder {
	if clk == nil {
		clk = clock.Wall{}
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Recorder{clk: clk, max: maxSpans}
}

// Clock returns the recorder's time source.
func (r *Recorder) Clock() clock.Clock { return r.clk }

func (r *Recorder) now() time.Time { return r.clk.Now() }

// StartSpan implements Tracer.
func (r *Recorder) StartSpan(name string) *Span { return r.startSpan(name, 0) }

func (r *Recorder) startSpan(name string, parent uint64) *Span {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return &Span{rec: r, id: id, parent: parent, name: name, start: r.clk.Now()}
}

// finish stores the span's record, honoring the span cap.
func (r *Recorder) finish(s *Span) {
	end := r.clk.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.max {
		r.dropped++
		return
	}
	r.spans = append(r.spans, SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Attrs:  s.attrs,
		Events: s.events,
	})
}

// Snapshot returns a copy of the finished spans ordered by start time
// (ties broken by ID, i.e. creation order — deterministic under a sim
// clock).
func (r *Recorder) Snapshot() []SpanRecord {
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of stored spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped reports how many finished spans were discarded by the cap.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all stored spans (the drop counter too), e.g. between
// benchmark phases.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = nil
	r.dropped = 0
}
