package telemetry

import (
	"sort"
	"sync"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// DefaultMaxSpans bounds a Recorder's memory: once this many spans are
// stored, further End calls are counted as dropped instead of recorded.
const DefaultMaxSpans = 1 << 16

// Recorder is the live Tracer: it timestamps spans on an injected
// clock.Clock and stores finished spans for export. It is safe for
// concurrent use by any number of goroutines (each span itself stays on
// one goroutine).
type Recorder struct {
	clk clock.Clock
	max int

	mu       sync.Mutex
	nextID   uint64
	spans    []SpanRecord
	dropped  int
	flight   *FlightRecorder
	mDropped *Counter
}

// NewRecorder builds a Recorder on the given clock. A nil clock selects the
// wall clock; simulated runs inject a *clock.Sim so every timestamp is
// exact virtual time. maxSpans <= 0 selects DefaultMaxSpans.
func NewRecorder(clk clock.Clock, maxSpans int) *Recorder {
	if clk == nil {
		clk = clock.Wall{}
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Recorder{clk: clk, max: maxSpans}
}

// Clock returns the recorder's time source.
func (r *Recorder) Clock() clock.Clock { return r.clk }

func (r *Recorder) now() time.Time { return r.clk.Now() }

// SetFlightRecorder attaches an always-on flight recorder: every finished
// span (and its events) is copied into the ring even when the span cap has
// been hit, so the black box keeps rolling after the exportable trace is
// full. Pass nil to detach.
func (r *Recorder) SetFlightRecorder(f *FlightRecorder) {
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
}

// Instrument publishes the recorder's drop count as the
// telemetry_spans_dropped counter on reg, so a silently-capped trace is
// visible on the /metrics debug page.
func (r *Recorder) Instrument(reg *Registry) {
	if reg == nil {
		return
	}
	c := reg.Counter("telemetry_spans_dropped")
	r.mu.Lock()
	r.mDropped = c
	c.Add(int64(r.dropped))
	r.mu.Unlock()
}

// StartSpan implements Tracer. The span roots a fresh trace (trace ID =
// span ID).
func (r *Recorder) StartSpan(name string) *Span {
	id := r.allocID()
	return &Span{rec: r, id: id, trace: id, name: name, start: r.clk.Now()}
}

// StartRemoteSpan implements RemoteTracer: the new span joins the parent's
// trace as a remote child, inheriting the parent's process label until
// SetProc overrides it. An invalid parent degrades to a fresh root.
func (r *Recorder) StartRemoteSpan(name string, parent TraceContext) *Span {
	id := r.allocID()
	if !parent.Valid() {
		return &Span{rec: r, id: id, trace: id, name: name, start: r.clk.Now()}
	}
	return &Span{
		rec: r, id: id, parent: parent.Span, trace: parent.Trace,
		proc: parent.Proc, remote: true, name: name, start: r.clk.Now(),
	}
}

func (r *Recorder) child(name string, parent *Span) *Span {
	id := r.allocID()
	return &Span{
		rec: r, id: id, parent: parent.id, trace: parent.trace,
		proc: parent.proc, name: name, start: r.clk.Now(),
	}
}

func (r *Recorder) allocID() uint64 {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return id
}

// finish stores the span's record, honoring the span cap. The attr and
// event slices are copied: the finished SpanRecord must not alias the
// span's internal buffers (End makes later mutation a no-op, and the copy
// guarantees the stored record is immutable regardless). The flight
// recorder is fed before the cap check so the black box stays current even
// when the exportable trace is full.
func (r *Recorder) finish(s *Span) {
	end := r.clk.Now()
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Trace:  s.trace,
		Proc:   s.proc,
		Remote: s.remote,
		Name:   s.name,
		Start:  s.start,
		End:    end,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make([]Attr, len(s.attrs))
		copy(rec.Attrs, s.attrs)
	}
	if len(s.events) > 0 {
		rec.Events = make([]EventRecord, len(s.events))
		copy(rec.Events, s.events)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flight != nil {
		r.flight.Record(rec)
	}
	if len(r.spans) >= r.max {
		r.dropped++
		r.mDropped.Inc()
		return
	}
	r.spans = append(r.spans, rec)
}

// Snapshot returns a deep copy of the finished spans ordered by start time
// (ties broken by ID, i.e. creation order — deterministic under a sim
// clock). Attr and event slices are copied too, so mutating a snapshot
// never reaches the stored records or other snapshots.
func (r *Recorder) Snapshot() []SpanRecord {
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	for i := range out {
		if len(out[i].Attrs) > 0 {
			out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
		}
		if len(out[i].Events) > 0 {
			out[i].Events = append([]EventRecord(nil), out[i].Events...)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of stored spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped reports how many finished spans were discarded by the cap.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all stored spans (the drop counter too), e.g. between
// benchmark phases.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = nil
	r.dropped = 0
}
