package telemetry

import (
	"encoding/json"
	"io"
)

// WriteSpans serializes span records as indented JSON, the raw-trace
// interchange format between elan-live -spans-out and elan-trace -attrib.
// Feed it Recorder.Snapshot() output: the snapshot order is deterministic
// under a sim clock, so the file is too.
func WriteSpans(w io.Writer, spans []SpanRecord) error {
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// ReadSpans parses a WriteSpans file.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var spans []SpanRecord
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
