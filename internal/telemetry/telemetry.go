// Package telemetry is the observability substrate of the elastic runtime:
// nested spans (a Tracer) and typed counters/gauges/histograms (a Registry)
// that every runtime layer — transport, coord, worker, core, collective,
// sched — emits so the paper's timing claims (sub-second adjustment,
// replication cost by link level, coordination overhead) are measurable
// artifacts instead of ad-hoc prints.
//
// Two properties shape the design:
//
//   - Clock injection. A Recorder reads time exclusively from an injected
//     clock.Clock, so runs under a clock.Sim produce exact virtual
//     timestamps and traces become assertable test fixtures (the same
//     discipline PR 1 established for timeouts and heartbeats).
//   - A free disabled path. The default Tracer is Nop and unconfigured
//     instruments are nil; every Span and instrument method is safe on a
//     nil receiver and performs no allocation, so instrumented hot paths
//     (the worker step, the bus call loop) cost nothing when telemetry is
//     off.
//
// Exporters turn the recorded data into standard formats: WriteChromeTrace
// emits Chrome trace-event JSON loadable in chrome://tracing or Perfetto,
// and Registry.WritePrometheus emits a Prometheus-style text snapshot
// (served live by DebugServer under /metrics).
package telemetry

import (
	"strconv"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// EventRecord is an instantaneous, timestamped event inside a span (e.g.
// the commit point of a scale-out, or a transport resend).
type EventRecord struct {
	Name string    `json:"name"`
	At   time.Time `json:"at"`
}

// SpanRecord is one finished span as stored by a Recorder.
type SpanRecord struct {
	// ID is unique within the recorder; Parent is 0 for root spans.
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	End    time.Time     `json:"end"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Events []EventRecord `json:"events,omitempty"`
}

// Duration returns the span's recorded duration.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Attr returns the value of the named attribute and whether it was set.
func (r SpanRecord) Attr(key string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Tracer starts spans. The two implementations are Recorder (keeps finished
// spans for export) and Nop (free). Component configs take a Tracer and
// normalize nil to Nop via OrNop.
type Tracer interface {
	// StartSpan opens a root span. The returned *Span may be nil (the Nop
	// tracer); all Span methods tolerate a nil receiver, so call sites
	// never check.
	StartSpan(name string) *Span
}

// Nop is the disabled tracer: StartSpan returns a nil span whose methods
// all no-op without allocating.
type Nop struct{}

// StartSpan implements Tracer.
func (Nop) StartSpan(string) *Span { return nil }

// OrNop normalizes a possibly-nil Tracer to Nop, the plumbing idiom used
// by every instrumented config.
func OrNop(tr Tracer) Tracer {
	if tr == nil {
		return Nop{}
	}
	return tr
}

// Span is an in-progress operation. Spans are created by a Tracer (or as
// children of other spans), annotated, and closed with End, at which point
// the owning Recorder stores a SpanRecord. A Span must not be used from
// multiple goroutines concurrently, matching how the runtime scopes them
// (one span per call / step / adjustment). The nil Span is valid and all
// its methods are allocation-free no-ops.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	events []EventRecord
	ended  bool
}

// Child opens a nested span under s. On a nil span it returns nil, keeping
// the whole tree free when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.startSpan(name, s.id)
}

// Annotate attaches a key/value attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer attribute. The formatting cost is only
// paid when the span is live.
func (s *Span) AnnotateInt(key string, v int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(v)})
}

// AnnotateDuration attaches a duration attribute.
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: d.String()})
}

// Event records an instantaneous named event at the current (injected)
// clock reading — resends, commit points, rollbacks.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, EventRecord{Name: name, At: s.rec.now()})
}

// End closes the span and hands it to the recorder. Ending twice records
// once.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.finish(s)
}
