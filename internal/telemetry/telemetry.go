// Package telemetry is the observability substrate of the elastic runtime:
// nested spans (a Tracer) and typed counters/gauges/histograms (a Registry)
// that every runtime layer — transport, coord, worker, core, collective,
// sched — emits so the paper's timing claims (sub-second adjustment,
// replication cost by link level, coordination overhead) are measurable
// artifacts instead of ad-hoc prints.
//
// Two properties shape the design:
//
//   - Clock injection. A Recorder reads time exclusively from an injected
//     clock.Clock, so runs under a clock.Sim produce exact virtual
//     timestamps and traces become assertable test fixtures (the same
//     discipline PR 1 established for timeouts and heartbeats).
//   - A free disabled path. The default Tracer is Nop and unconfigured
//     instruments are nil; every Span and instrument method is safe on a
//     nil receiver and performs no allocation, so instrumented hot paths
//     (the worker step, the bus call loop) cost nothing when telemetry is
//     off.
//
// Exporters turn the recorded data into standard formats: WriteChromeTrace
// emits Chrome trace-event JSON loadable in chrome://tracing or Perfetto,
// and Registry.WritePrometheus emits a Prometheus-style text snapshot
// (served live by DebugServer under /metrics).
package telemetry

import (
	"strconv"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// EventRecord is an instantaneous, timestamped event inside a span (e.g.
// the commit point of a scale-out, or a transport resend).
type EventRecord struct {
	Name string    `json:"name"`
	At   time.Time `json:"at"`
}

// SpanRecord is one finished span as stored by a Recorder.
type SpanRecord struct {
	// ID is unique within the recorder; Parent is 0 for root spans.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the causal tree the span belongs to. A root span mints a
	// trace equal to its own ID; children and remote children inherit it,
	// so one cross-process operation shares one trace.
	Trace uint64 `json:"trace,omitempty"`
	// Proc is the logical process ("fleet-am", "agent-2", ...) the span ran
	// in. Empty means the main process.
	Proc string `json:"proc,omitempty"`
	// Remote marks a span whose parent lives in another process: the
	// parent ID arrived in a TraceContext rather than from a local *Span.
	Remote bool          `json:"remote,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	End    time.Time     `json:"end"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Events []EventRecord `json:"events,omitempty"`
}

// Duration returns the span's recorded duration.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Attr returns the value of the named attribute and whether it was set.
func (r SpanRecord) Attr(key string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TraceContext is the wire form of causality: just enough of a span's
// identity (trace ID + span ID + logical process) to let the receiving side
// open a remote child. It travels inside transport.Message, so one scale
// adjustment that flows sched → AM → workers renders as a single tree. The
// zero value is "no trace" and propagating it costs nothing.
type TraceContext struct {
	Trace uint64 `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	Proc  string `json:"proc,omitempty"`
}

// Valid reports whether the context names a real span.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 && tc.Span != 0 }

// Tracer starts spans. The two implementations are Recorder (keeps finished
// spans for export) and Nop (free). Component configs take a Tracer and
// normalize nil to Nop via OrNop.
type Tracer interface {
	// StartSpan opens a root span. The returned *Span may be nil (the Nop
	// tracer); all Span methods tolerate a nil receiver, so call sites
	// never check.
	StartSpan(name string) *Span
}

// RemoteTracer is the optional Tracer extension for opening a span whose
// parent lives in another process, identified by a TraceContext extracted
// from a message. Recorder implements it; Nop returns nil.
type RemoteTracer interface {
	Tracer
	// StartRemoteSpan opens a span as a remote child of parent. An invalid
	// (zero) parent degrades to a fresh root span.
	StartRemoteSpan(name string, parent TraceContext) *Span
}

// Nop is the disabled tracer: StartSpan returns a nil span whose methods
// all no-op without allocating.
type Nop struct{}

// StartSpan implements Tracer.
//
//elan:hotpath
func (Nop) StartSpan(string) *Span { return nil }

// StartRemoteSpan implements RemoteTracer.
//
//elan:hotpath
func (Nop) StartRemoteSpan(string, TraceContext) *Span { return nil }

// OrNop normalizes a possibly-nil Tracer to Nop, the plumbing idiom used
// by every instrumented config.
//
//elan:hotpath
func OrNop(tr Tracer) Tracer {
	if tr == nil {
		return Nop{}
	}
	return tr
}

// StartRemote opens a remote-child span on any Tracer: tracers that
// implement RemoteTracer link to the parent context, others fall back to a
// root span. A nil or Nop tracer returns nil, keeping disabled paths free.
//
//elan:hotpath
func StartRemote(tr Tracer, name string, parent TraceContext) *Span {
	if tr == nil {
		return nil
	}
	if rt, ok := tr.(RemoteTracer); ok {
		return rt.StartRemoteSpan(name, parent)
	}
	return tr.StartSpan(name)
}

// procTracer labels every span it starts with a fixed logical process name.
type procTracer struct {
	inner Tracer
	proc  string
}

func (p procTracer) StartSpan(name string) *Span {
	s := p.inner.StartSpan(name)
	s.SetProc(p.proc)
	return s
}

func (p procTracer) StartRemoteSpan(name string, parent TraceContext) *Span {
	s := StartRemote(p.inner, name, parent)
	s.SetProc(p.proc)
	return s
}

// WithProc wraps tr so every span it starts is labeled with the given
// logical process name ("fleet-am", "agent-3", ...). Children inherit the
// label; remote children carry it across process boundaries inside their
// TraceContext. A nil or Nop tracer passes through unchanged, so the
// disabled path stays allocation-free.
func WithProc(tr Tracer, proc string) Tracer {
	if tr == nil {
		return Nop{}
	}
	if _, ok := tr.(Nop); ok {
		return tr
	}
	return procTracer{inner: tr, proc: proc}
}

// Span is an in-progress operation. Spans are created by a Tracer (or as
// children of other spans), annotated, and closed with End, at which point
// the owning Recorder stores a SpanRecord. A Span must not be used from
// multiple goroutines concurrently, matching how the runtime scopes them
// (one span per call / step / adjustment). The nil Span is valid and all
// its methods are allocation-free no-ops.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	trace  uint64
	proc   string
	remote bool
	name   string
	start  time.Time
	attrs  []Attr
	events []EventRecord
	ended  bool
}

// Child opens a nested span under s, inheriting its trace and process
// label. On a nil span it returns nil, keeping the whole tree free when
// tracing is off.
//
//elan:hotpath
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.child(name, s)
}

// Context returns the span's wire identity for propagation in messages.
// The nil span returns the zero TraceContext, so untraced paths propagate
// "no trace" for free.
//
//elan:hotpath
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{Trace: s.trace, Span: s.id, Proc: s.proc}
}

// SetProc overrides the span's logical process label. A no-op on nil or
// ended spans.
//
//elan:hotpath
func (s *Span) SetProc(proc string) {
	if s == nil || s.ended {
		return
	}
	s.proc = proc
}

// Annotate attaches a key/value attribute. After End the span record is
// owned by the recorder, so late annotations are documented no-ops rather
// than silent mutations of the finished record.
//
//elan:hotpath
func (s *Span) Annotate(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer attribute. The formatting cost is only
// paid when the span is live. A no-op after End.
//
//elan:hotpath
func (s *Span) AnnotateInt(key string, v int) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(v)})
}

// AnnotateDuration attaches a duration attribute. A no-op after End.
//
//elan:hotpath
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: d.String()})
}

// Event records an instantaneous named event at the current (injected)
// clock reading — resends, commit points, rollbacks. A no-op after End.
//
//elan:hotpath
func (s *Span) Event(name string) {
	if s == nil || s.ended {
		return
	}
	s.events = append(s.events, EventRecord{Name: name, At: s.rec.now()})
}

// End closes the span and hands it to the recorder. Ending twice records
// once.
//
//elan:hotpath
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.finish(s)
}
