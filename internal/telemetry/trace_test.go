package telemetry

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// TestTracePropagation: roots mint a trace equal to their ID, children and
// remote children inherit it, and remote children carry the Remote mark and
// the parent's process label until overridden.
func TestTracePropagation(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)

	root := rec.StartSpan("sched.request")
	root.SetProc("fleet-sched")
	child := root.Child("transport.call")
	remote := rec.StartRemoteSpan("transport.handle", child.Context())
	remote.SetProc("fleet-am")
	grand := remote.Child("coord.adjust_request")
	grand.End()
	remote.End()
	child.End()
	root.End()

	spans := rec.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	r := spans[0]
	if r.Trace != r.ID {
		t.Fatalf("root trace = %d, want its own ID %d", r.Trace, r.ID)
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	c, rm, g := byName["transport.call"], byName["transport.handle"], byName["coord.adjust_request"]
	if c.Trace != r.Trace || rm.Trace != r.Trace || g.Trace != r.Trace {
		t.Fatal("trace ID not inherited across child/remote/grandchild")
	}
	if c.Proc != "fleet-sched" {
		t.Errorf("child proc = %q, want inherited fleet-sched", c.Proc)
	}
	if !rm.Remote || rm.Parent != c.ID {
		t.Errorf("remote span: Remote=%v Parent=%d, want true and %d", rm.Remote, rm.Parent, c.ID)
	}
	if rm.Proc != "fleet-am" || g.Proc != "fleet-am" {
		t.Errorf("remote proc = %q, grandchild proc = %q, want fleet-am", rm.Proc, g.Proc)
	}
	if g.Remote {
		t.Error("local grandchild marked remote")
	}
}

func TestTraceContextValid(t *testing.T) {
	if (TraceContext{}).Valid() {
		t.Error("zero context is valid")
	}
	if !(TraceContext{Trace: 1, Span: 2}).Valid() {
		t.Error("real context is invalid")
	}
	var s *Span
	if s.Context() != (TraceContext{}) {
		t.Error("nil span context is not zero")
	}
}

// TestStartRemoteFallbacks: StartRemote is safe on nil and Nop tracers, and
// degrades to a root span for tracers without RemoteTracer.
func TestStartRemoteFallbacks(t *testing.T) {
	parent := TraceContext{Trace: 9, Span: 9}
	if StartRemote(nil, "x", parent) != nil {
		t.Error("StartRemote(nil) returned a span")
	}
	if StartRemote(Nop{}, "x", parent) != nil {
		t.Error("StartRemote(Nop) returned a span")
	}
	rec := NewRecorder(clock.NewSim(epoch), 0)
	if s := rec.StartRemoteSpan("x", TraceContext{}); s == nil {
		t.Error("invalid parent should degrade to a root span")
	} else if s.remote {
		t.Error("degraded root span marked remote")
	}
}

func TestWithProc(t *testing.T) {
	if _, ok := WithProc(nil, "p").(Nop); !ok {
		t.Error("WithProc(nil) is not Nop")
	}
	if _, ok := WithProc(Nop{}, "p").(Nop); !ok {
		t.Error("WithProc(Nop) did not pass through")
	}
	rec := NewRecorder(clock.NewSim(epoch), 0)
	tr := WithProc(rec, "agent-7")
	tr.StartSpan("a").End()
	StartRemote(tr, "b", TraceContext{Trace: 1, Span: 1, Proc: "elsewhere"}).End()
	spans := rec.Snapshot()
	if len(spans) != 2 || spans[0].Proc != "agent-7" || spans[1].Proc != "agent-7" {
		t.Fatalf("proc labels = %+v, want agent-7 on both", spans)
	}
}

// TestFinishedRecordImmutable is the regression test for the finish-path
// aliasing bug: the stored SpanRecord must not share backing arrays with
// the span, and mutation after End is a documented no-op.
func TestFinishedRecordImmutable(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)
	s := rec.StartSpan("op")
	s.Annotate("k", "v")
	s.Event("e")
	s.End()

	// Post-End mutations: all documented no-ops.
	s.Annotate("late", "x")
	s.AnnotateInt("late2", 1)
	s.AnnotateDuration("late3", time.Second)
	s.Event("late-event")
	s.SetProc("late-proc")

	got := rec.Snapshot()[0]
	if len(got.Attrs) != 1 || got.Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("stored attrs mutated after End: %+v", got.Attrs)
	}
	if len(got.Events) != 1 || got.Events[0].Name != "e" {
		t.Fatalf("stored events mutated after End: %+v", got.Events)
	}
	if got.Proc != "" {
		t.Fatalf("stored proc mutated after End: %q", got.Proc)
	}
	// Direct aliasing probe: growing into the span's old capacity must not
	// show through the snapshot copy.
	s2 := rec.StartSpan("op2")
	s2.Annotate("a", "1")
	s2.Annotate("b", "2")
	s2.End()
	snap := rec.Snapshot()
	snap[1].Attrs[0].Value = "clobbered"
	if v, _ := rec.Snapshot()[1].Attr("a"); v != "1" {
		t.Fatalf("snapshot aliases stored record: a=%q", v)
	}
}

// TestSpansDroppedMetric: the recorder's drop count is published as the
// telemetry_spans_dropped counter, including drops from before Instrument.
func TestSpansDroppedMetric(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 1)
	rec.StartSpan("kept").End()
	rec.StartSpan("early-drop").End()
	reg := NewRegistry()
	rec.Instrument(reg)
	rec.StartSpan("late-drop").End()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("telemetry_spans_dropped 2")) {
		t.Fatalf("metrics missing telemetry_spans_dropped 2:\n%s", buf.String())
	}
}

func TestContextCarriesSpan(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)
	s := rec.StartSpan("op")
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFromContext(ctx) != s {
		t.Fatal("span not recovered from context")
	}
	// Nil span attaches nothing; background yields nil.
	if ContextWithSpan(context.Background(), nil) != context.Background() {
		t.Error("nil span changed the context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Error("background context yielded a span")
	}
}
