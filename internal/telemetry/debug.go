package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
)

// DebugServer serves the runtime's observability endpoints over HTTP:
//
//	/metrics  Prometheus text snapshot of the registry
//	/healthz  liveness probe ("ok")
//
// It owns one listener goroutine (plus net/http's per-connection ones) and
// Close tears all of them down and waits, so tests can assert no leak.
type DebugServer struct {
	reg  *Registry
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewDebugServer listens on addr ("127.0.0.1:0" for an ephemeral port) and
// starts serving. The registry may be nil (the metrics snapshot is empty).
func NewDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	d := &DebugServer{reg: reg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	d.srv = &http.Server{Handler: mux}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = d.reg.WritePrometheus(w)
}

// Addr returns the bound address (host:port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server, aborting open connections, and waits for the
// serve goroutine to exit. Closing twice is safe.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
