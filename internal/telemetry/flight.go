package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is the ring size a zero capacity selects: enough to
// hold the last few hundred steps of a small fleet without mattering for
// memory (~half a megabyte).
const DefaultFlightCapacity = 4096

// flightAttrCap bounds how many attributes one flight record keeps. The
// ring stores fixed-layout records so the steady-state path never
// allocates; spans with more attributes are truncated, not dropped.
const flightAttrCap = 4

// FlightRecord is one fixed-layout slot of the flight ring: a finished span
// (Kind 'S') or an instantaneous event (Kind 'E', Parent = owning span).
// The layout is flat — no slices, no maps — so overwriting a slot reuses
// its memory and the record path stays allocation-free.
type FlightRecord struct {
	Kind   byte // 'S' span, 'E' event
	Name   string
	Proc   string
	Trace  uint64
	ID     uint64
	Parent uint64
	Start  time.Time
	End    time.Time
	NAttrs int
	Attrs  [flightAttrCap]Attr
}

// FlightRecorder is the always-on black box: a fixed-capacity,
// pre-allocated ring of recent span and event records that overwrites the
// oldest entry. Unlike the Recorder's exportable trace it never fills up
// and never allocates in steady state (guarded by an AllocsPerRun test), so
// it can run in production and be dumped on fault — by the chaos harness,
// by worker/AM crash paths, or on demand. All methods are safe on a nil
// receiver and for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightRecord
	next  int    // index of the slot the next record overwrites
	total uint64 // records ever written (wrapped records included)

	lastReason string
	lastDump   []FlightRecord
}

// NewFlightRecorder pre-allocates a ring of the given capacity (<= 0
// selects DefaultFlightCapacity). All memory is allocated here; recording
// never allocates again.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]FlightRecord, capacity)}
}

// Capacity returns the ring size.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// Total returns how many records have ever been written (including ones
// already overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// slot claims the next ring slot. Caller holds f.mu.
//
//elan:hotpath
func (f *FlightRecorder) slot() *FlightRecord {
	s := &f.buf[f.next]
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
	}
	f.total++
	return s
}

// Record copies a finished span into the ring: scalar fields, the first
// flightAttrCap attributes, and each span event as its own 'E' slot (with
// Parent = the span's ID, so dumps re-associate them). The SpanRecord is
// taken by value and only its backing arrays are read, never retained —
// the whole path is allocation-free.
//
//elan:hotpath
func (f *FlightRecorder) Record(rec SpanRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	s := f.slot()
	s.Kind = 'S'
	s.Name = rec.Name
	s.Proc = rec.Proc
	s.Trace = rec.Trace
	s.ID = rec.ID
	s.Parent = rec.Parent
	s.Start = rec.Start
	s.End = rec.End
	n := len(rec.Attrs)
	if n > flightAttrCap {
		n = flightAttrCap
	}
	s.NAttrs = n
	for i := 0; i < n; i++ {
		s.Attrs[i] = rec.Attrs[i]
	}
	for _, ev := range rec.Events {
		e := f.slot()
		e.Kind = 'E'
		e.Name = ev.Name
		e.Proc = rec.Proc
		e.Trace = rec.Trace
		e.ID = 0
		e.Parent = rec.ID
		e.Start = ev.At
		e.End = ev.At
		e.NAttrs = 0
	}
	f.mu.Unlock()
}

// RecordEvent writes a standalone instantaneous event (a crash marker, a
// chaos fault) into the ring. Allocation-free.
//
//elan:hotpath
func (f *FlightRecorder) RecordEvent(proc, name string, at time.Time) {
	if f == nil {
		return
	}
	f.mu.Lock()
	e := f.slot()
	e.Kind = 'E'
	e.Name = name
	e.Proc = proc
	e.Trace = 0
	e.ID = 0
	e.Parent = 0
	e.Start = at
	e.End = at
	e.NAttrs = 0
	f.mu.Unlock()
}

// Snapshot copies the ring contents out, oldest first. The dump path may
// allocate; only recording is allocation-free.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *FlightRecorder) snapshotLocked() []FlightRecord {
	n := len(f.buf)
	if f.total < uint64(n) {
		n = int(f.total)
	}
	out := make([]FlightRecord, 0, n)
	if f.total >= uint64(len(f.buf)) {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf[:f.next]...)
	}
	return out
}

// DumpNow captures the current ring contents as the "last dump" under the
// given reason (a fault description, a crash site) and returns the copy.
// Crash and chaos paths call this at the moment of the fault so the black
// box preserved is the one from just before impact.
func (f *FlightRecorder) DumpNow(reason string) []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dump := f.snapshotLocked()
	f.lastReason = reason
	f.lastDump = dump
	return append([]FlightRecord(nil), dump...)
}

// LastDump returns the most recent DumpNow capture and its reason.
func (f *FlightRecorder) LastDump() (string, []FlightRecord) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastReason, append([]FlightRecord(nil), f.lastDump...)
}

// WriteFlightDump renders records as a readable postmortem log, oldest
// first. Timestamps are printed as offsets from the first record so sim-
// and wall-clock dumps read the same way.
func WriteFlightDump(w io.Writer, reason string, recs []FlightRecord) error {
	if _, err := fmt.Fprintf(w, "flight dump: reason=%q records=%d\n", reason, len(recs)); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	origin := recs[0].Start
	for _, r := range recs {
		switch r.Kind {
		case 'S':
			if _, err := fmt.Fprintf(w, "  S +%-12s dur=%-10s proc=%-10s trace=%d id=%d parent=%d %s",
				r.Start.Sub(origin), r.End.Sub(r.Start), procLabel(r.Proc), r.Trace, r.ID, r.Parent, r.Name); err != nil {
				return err
			}
			for i := 0; i < r.NAttrs; i++ {
				if _, err := fmt.Fprintf(w, " %s=%s", r.Attrs[i].Key, r.Attrs[i].Value); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		case 'E':
			if _, err := fmt.Fprintf(w, "  E +%-12s proc=%-10s trace=%d span=%d %s\n",
				r.Start.Sub(origin), procLabel(r.Proc), r.Trace, r.Parent, r.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func procLabel(proc string) string {
	if proc == "" {
		return "main"
	}
	return proc
}
