package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

func TestWriteChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty trace = %q, want []", sb.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)

	root := rec.StartSpan("core.scale_out")
	root.AnnotateInt("from", 2)
	sim.Advance(10 * time.Millisecond)
	child := root.Child("core.replicate_state")
	sim.Advance(5 * time.Millisecond)
	root.Event("commit-point")
	child.End()
	root.End()

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, rec.Snapshot()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 4 { // process_name metadata + two X spans + one instant
		t.Fatalf("events = %d, want 4", len(events))
	}
	byName := make(map[string]map[string]any)
	for _, e := range events {
		byName[e["name"].(string)] = e
	}
	meta := byName["process_name"]
	if meta == nil || meta["ph"] != "M" {
		t.Fatalf("missing process_name metadata event: %v", byName)
	}
	if args, ok := meta["args"].(map[string]any); !ok || args["name"] != "main" {
		t.Errorf("process_name args = %v, want name=main", meta["args"])
	}
	rootEv, ok := byName["core.scale_out"]
	if !ok {
		t.Fatalf("missing root event: %v", byName)
	}
	if rootEv["ph"] != "X" || rootEv["ts"].(float64) != 0 || rootEv["dur"].(float64) != 15000 {
		t.Errorf("root event = %v, want X at ts=0 dur=15000µs", rootEv)
	}
	if args, ok := rootEv["args"].(map[string]any); !ok || args["from"] != "2" {
		t.Errorf("root args = %v", rootEv["args"])
	}
	childEv := byName["core.replicate_state"]
	if childEv == nil || childEv["ts"].(float64) != 10000 || childEv["dur"].(float64) != 5000 {
		t.Errorf("child event = %v, want ts=10000 dur=5000", childEv)
	}
	// The child rides the root's track.
	if childEv["tid"].(float64) != rootEv["tid"].(float64) {
		t.Errorf("child tid %v != root tid %v", childEv["tid"], rootEv["tid"])
	}
	inst := byName["core.scale_out/commit-point"]
	if inst == nil || inst["ph"] != "i" || inst["ts"].(float64) != 15000 || inst["s"] != "t" {
		t.Errorf("instant event = %v, want i at ts=15000 scope t", inst)
	}
}

// TestChromeTraceSeparateTracks: concurrent root spans land on distinct
// tracks.
func TestChromeTraceSeparateTracks(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)
	a := rec.StartSpan("a")
	b := rec.StartSpan("b")
	a.End()
	b.End()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	var xs []map[string]any
	for _, e := range events {
		if e["ph"] == "X" {
			xs = append(xs, e)
		}
	}
	if len(xs) != 2 {
		t.Fatalf("X events = %d, want 2", len(xs))
	}
	if xs[0]["tid"] == xs[1]["tid"] {
		t.Fatalf("concurrent roots share tid %v", xs[0]["tid"])
	}
}

// crossProcTrace records a two-process trace: a sched-side root whose
// remote child runs on the AM with its own local grandchild.
func crossProcTrace() []SpanRecord {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	root := rec.StartSpan("sched.request")
	root.SetProc("fleet-sched")
	sim.Advance(time.Millisecond)
	remote := rec.StartRemoteSpan("coord.adjust_request", root.Context())
	remote.SetProc("fleet-am")
	sim.Advance(time.Millisecond)
	grand := remote.Child("coord.persist")
	sim.Advance(time.Millisecond)
	grand.End()
	remote.End()
	root.End()
	return rec.Snapshot()
}

// TestChromeTraceCrossProcess: each logical process gets its own pid with a
// process_name metadata event, and a span whose parent lives in another
// process gets an "s"→"f" flow pair so Perfetto draws the causality arrow.
func TestChromeTraceCrossProcess(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, crossProcTrace()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	procs := map[string]float64{}
	var flows []map[string]any
	byName := map[string]map[string]any{}
	for _, e := range events {
		switch e["ph"] {
		case "M":
			procs[e["args"].(map[string]any)["name"].(string)] = e["pid"].(float64)
		case "s", "f":
			flows = append(flows, e)
		case "X":
			byName[e["name"].(string)] = e
		}
	}
	if len(procs) != 2 || procs["fleet-sched"] == procs["fleet-am"] {
		t.Fatalf("process metadata = %v, want two distinct pids", procs)
	}
	// Sorted proc names: fleet-am=1, fleet-sched=2.
	if procs["fleet-am"] != 1 || procs["fleet-sched"] != 2 {
		t.Errorf("pids = %v, want deterministic sorted assignment", procs)
	}
	if byName["sched.request"]["pid"] != procs["fleet-sched"] ||
		byName["coord.adjust_request"]["pid"] != procs["fleet-am"] ||
		byName["coord.persist"]["pid"] != procs["fleet-am"] {
		t.Errorf("span pids wrong: %v", byName)
	}
	// The cross-process grandchild stays nested locally: no flow for it.
	if len(flows) != 2 {
		t.Fatalf("flow events = %d, want one s+f pair", len(flows))
	}
	s, f := flows[0], flows[1]
	if s["ph"] != "s" || f["ph"] != "f" || s["id"] != f["id"] || f["bp"] != "e" {
		t.Errorf("flow pair = %v / %v", s, f)
	}
	if s["pid"] != procs["fleet-sched"] || f["pid"] != procs["fleet-am"] {
		t.Errorf("flow pids = %v → %v, want sched → am", s["pid"], f["pid"])
	}
	if f["ts"].(float64) != 1000 { // remote child starts at epoch+1ms
		t.Errorf("flow arrival ts = %v, want 1000µs", f["ts"])
	}
}

// TestChromeTraceDeterministic: the same sim-clock run exports byte-
// identical JSON — traces are fixtures, and a diff means a real change.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteChromeTrace(&a, crossProcTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, crossProcTrace()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("identical runs exported different traces:\n%s\n---\n%s", a.String(), b.String())
	}
}
