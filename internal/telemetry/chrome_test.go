package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

func TestWriteChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty trace = %q, want []", sb.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)

	root := rec.StartSpan("core.scale_out")
	root.AnnotateInt("from", 2)
	sim.Advance(10 * time.Millisecond)
	child := root.Child("core.replicate_state")
	sim.Advance(5 * time.Millisecond)
	root.Event("commit-point")
	child.End()
	root.End()

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, rec.Snapshot()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 3 { // two X spans + one instant
		t.Fatalf("events = %d, want 3", len(events))
	}
	byName := make(map[string]map[string]any)
	for _, e := range events {
		byName[e["name"].(string)] = e
	}
	rootEv, ok := byName["core.scale_out"]
	if !ok {
		t.Fatalf("missing root event: %v", byName)
	}
	if rootEv["ph"] != "X" || rootEv["ts"].(float64) != 0 || rootEv["dur"].(float64) != 15000 {
		t.Errorf("root event = %v, want X at ts=0 dur=15000µs", rootEv)
	}
	if args, ok := rootEv["args"].(map[string]any); !ok || args["from"] != "2" {
		t.Errorf("root args = %v", rootEv["args"])
	}
	childEv := byName["core.replicate_state"]
	if childEv == nil || childEv["ts"].(float64) != 10000 || childEv["dur"].(float64) != 5000 {
		t.Errorf("child event = %v, want ts=10000 dur=5000", childEv)
	}
	// The child rides the root's track.
	if childEv["tid"].(float64) != rootEv["tid"].(float64) {
		t.Errorf("child tid %v != root tid %v", childEv["tid"], rootEv["tid"])
	}
	inst := byName["core.scale_out/commit-point"]
	if inst == nil || inst["ph"] != "i" || inst["ts"].(float64) != 15000 || inst["s"] != "t" {
		t.Errorf("instant event = %v, want i at ts=15000 scope t", inst)
	}
}

// TestChromeTraceSeparateTracks: concurrent root spans land on distinct
// tracks.
func TestChromeTraceSeparateTracks(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)
	a := rec.StartSpan("a")
	b := rec.StartSpan("b")
	a.End()
	b.End()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	if events[0]["tid"] == events[1]["tid"] {
		t.Fatalf("concurrent roots share tid %v", events[0]["tid"])
	}
}
