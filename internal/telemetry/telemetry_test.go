package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestSimClockSpanTimestamps drives a recorder on a sim clock and asserts
// every timestamp exactly: with injected time, traces are fixtures, not
// approximations.
func TestSimClockSpanTimestamps(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)

	root := rec.StartSpan("adjust")
	root.AnnotateInt("workers", 4)
	sim.Advance(250 * time.Millisecond)
	child := root.Child("replicate")
	sim.Advance(100 * time.Millisecond)
	root.Event("commit-point")
	child.End()
	sim.Advance(50 * time.Millisecond)
	root.End()

	spans := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Snapshot orders by start time: root first.
	r, c := spans[0], spans[1]
	if r.Name != "adjust" || c.Name != "replicate" {
		t.Fatalf("order = %q, %q", r.Name, c.Name)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent = %d, want %d", c.Parent, r.ID)
	}
	if !r.Start.Equal(epoch) {
		t.Errorf("root start = %v, want %v", r.Start, epoch)
	}
	if !r.End.Equal(epoch.Add(400 * time.Millisecond)) {
		t.Errorf("root end = %v, want epoch+400ms", r.End)
	}
	if !c.Start.Equal(epoch.Add(250*time.Millisecond)) || !c.End.Equal(epoch.Add(350*time.Millisecond)) {
		t.Errorf("child window = [%v, %v], want epoch+[250ms, 350ms]", c.Start, c.End)
	}
	if c.Duration() != 100*time.Millisecond {
		t.Errorf("child duration = %v, want 100ms", c.Duration())
	}
	if len(r.Events) != 1 || r.Events[0].Name != "commit-point" ||
		!r.Events[0].At.Equal(epoch.Add(350*time.Millisecond)) {
		t.Errorf("root events = %+v, want commit-point at epoch+350ms", r.Events)
	}
	if v, ok := r.Attr("workers"); !ok || v != "4" {
		t.Errorf("workers attr = %q, %v", v, ok)
	}
	if _, ok := r.Attr("missing"); ok {
		t.Error("missing attr reported present")
	}
}

// TestSnapshotOrderingDeterministic: spans starting at the same virtual
// instant are ordered by creation.
func TestSnapshotOrderingDeterministic(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	a := rec.StartSpan("a")
	b := rec.StartSpan("b")
	b.End()
	a.End()
	spans := rec.Snapshot()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("order = %+v, want a then b", spans)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 0)
	s := rec.StartSpan("once")
	s.End()
	s.End()
	if rec.Len() != 1 {
		t.Fatalf("Len = %d after double End, want 1", rec.Len())
	}
}

func TestRecorderCapDrops(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 2)
	for i := 0; i < 5; i++ {
		rec.StartSpan("s").End()
	}
	if rec.Len() != 2 || rec.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 3", rec.Len(), rec.Dropped())
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", rec.Len(), rec.Dropped())
	}
}

// TestNilSpanSafe: the entire span API on nil receivers, as the Nop tracer
// hands out.
func TestNilSpanSafe(t *testing.T) {
	var s *Span = Nop{}.StartSpan("anything")
	if s != nil {
		t.Fatal("Nop.StartSpan returned non-nil")
	}
	s.Annotate("k", "v")
	s.AnnotateInt("n", 1)
	s.AnnotateDuration("d", time.Second)
	s.Event("e")
	if c := s.Child("child"); c != nil {
		t.Fatal("nil span returned non-nil child")
	}
	s.End()
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) is not Nop")
	}
	rec := NewRecorder(nil, 0)
	if OrNop(rec) != Tracer(rec) {
		t.Fatal("OrNop did not pass through a live tracer")
	}
}

// TestNilInstrumentsSafe: a nil registry hands out nil instruments whose
// whole API no-ops.
func TestNilInstrumentsSafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3.5)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments accumulated values")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus = %q, %v", sb.String(), err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("same counter name resolved to different instruments")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Error("same gauge name resolved to different instruments")
	}
	if reg.Histogram("x") != reg.Histogram("x") {
		t.Error("same histogram name resolved to different instruments")
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Add(3)
	c.Add(-10)
	c.Add(0)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Sum != 5050 {
		t.Fatalf("count=%d sum=%g, want 100 and 5050", snap.Count, snap.Sum)
	}
	if snap.Quantiles.P50 < 49 || snap.Quantiles.P50 > 52 {
		t.Errorf("P50 = %g, want ~50.5", snap.Quantiles.P50)
	}
	if snap.Quantiles.P99 < snap.Quantiles.P95 || snap.Quantiles.P95 < snap.Quantiles.P50 {
		t.Errorf("quantiles not ordered: %+v", snap.Quantiles)
	}
	if snap.Summary.Max != 100 || snap.Summary.Min != 1 {
		t.Errorf("summary = %+v", snap.Summary)
	}
}

// TestHistogramWindowRolls: count and sum stay exact after the quantile
// window wraps.
func TestHistogramWindowRolls(t *testing.T) {
	h := NewRegistry().Histogram("h")
	n := histWindow + 100
	for i := 0; i < n; i++ {
		h.Observe(1)
	}
	snap := h.Snapshot()
	if snap.Count != int64(n) || snap.Sum != float64(n) {
		t.Fatalf("count=%d sum=%g, want %d", snap.Count, snap.Sum, n)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Add(7)
	reg.Counter("a_total").Add(3)
	reg.Gauge("g_workers").Set(4)
	h := reg.Histogram("h_seconds")
	h.Observe(0.5)
	h.Observe(1.5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		"# TYPE b_total counter\nb_total 7\n",
		"# TYPE g_workers gauge\ng_workers 4\n",
		"# TYPE h_seconds summary\n",
		`h_seconds{quantile="0.5"}`,
		"h_seconds_sum 2\n",
		"h_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Counters sorted by name.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("counters not sorted by name")
	}
}

// waitNumGoroutine retries until the goroutine count drops back to at most
// want (the idiom used by the transport and worker leak guards).
func waitNumGoroutine(t *testing.T, want int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d, want <= %d", runtime.NumGoroutine(), want)
}

// TestNoGoroutineLeak: a recorder and registry session, including spans left
// unended, holds no goroutines at all.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	rec := NewRecorder(clock.NewSim(epoch), 0)
	reg := NewRegistry()
	s := rec.StartSpan("leaky")
	s.Child("abandoned") // never ended
	s.End()
	reg.Counter("c").Inc()
	reg.Histogram("h").Observe(1)
	_ = rec.Snapshot()
	waitNumGoroutine(t, before)
}
