package telemetry

import (
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// TestFlightRecordZeroAllocs is the contract behind "the black box can run
// in production": recording a finished span (with attributes and events)
// and a standalone marker into a pre-allocated ring performs no
// allocations.
func TestFlightRecordZeroAllocs(t *testing.T) {
	f := NewFlightRecorder(64)
	rec := SpanRecord{
		ID: 7, Parent: 3, Trace: 7, Proc: "agent-1", Name: "worker.rank_step",
		Start: epoch, End: epoch.Add(time.Millisecond),
		Attrs:  []Attr{{Key: "rank", Value: "1"}, {Key: "iter", Value: "9"}},
		Events: []EventRecord{{Name: "retry", At: epoch}},
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(rec)
		f.RecordEvent("chaos", "net.partition", epoch)
	})
	if allocs != 0 {
		t.Fatalf("flight record path allocates %.1f times per run, want 0", allocs)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.RecordEvent("p", "ev"+string(rune('0'+i)), epoch.Add(time.Duration(i)*time.Second))
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want capacity 4", len(snap))
	}
	// Oldest first: the surviving records are ev6..ev9.
	for i, r := range snap {
		want := "ev" + string(rune('0'+6+i))
		if r.Name != want {
			t.Errorf("snap[%d] = %q, want %q", i, r.Name, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.RecordEvent("p", "a", epoch)
	f.RecordEvent("p", "b", epoch.Add(time.Second))
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("partial snapshot = %+v, want [a b]", snap)
	}
}

// TestFlightRecorderSpanEvents: a span's events become their own 'E' slots
// pointing back at the span.
func TestFlightRecorderSpanEvents(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(SpanRecord{
		ID: 5, Trace: 5, Name: "core.scale_out",
		Start: epoch, End: epoch.Add(time.Second),
		Events: []EventRecord{{Name: "commit-point", At: epoch.Add(400 * time.Millisecond)}},
	})
	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("slots = %d, want span + event", len(snap))
	}
	if snap[0].Kind != 'S' || snap[1].Kind != 'E' {
		t.Fatalf("kinds = %c %c, want S E", snap[0].Kind, snap[1].Kind)
	}
	if snap[1].Parent != 5 || snap[1].Name != "commit-point" {
		t.Errorf("event slot = %+v, want parent=5 name=commit-point", snap[1])
	}
}

// TestFlightRecorderAttrTruncation: spans with more than flightAttrCap
// attributes are truncated, not dropped.
func TestFlightRecorderAttrTruncation(t *testing.T) {
	f := NewFlightRecorder(4)
	attrs := make([]Attr, flightAttrCap+3)
	for i := range attrs {
		attrs[i] = Attr{Key: "k", Value: "v"}
	}
	f.Record(SpanRecord{ID: 1, Trace: 1, Name: "big", Start: epoch, End: epoch, Attrs: attrs})
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].NAttrs != flightAttrCap {
		t.Fatalf("NAttrs = %d, want %d", snap[0].NAttrs, flightAttrCap)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := NewFlightRecorder(8)
	f.RecordEvent("fleet-lead", "worker-crash", epoch)
	dump := f.DumpNow("worker-crash agent-1")
	if len(dump) != 1 {
		t.Fatalf("dump len = %d, want 1", len(dump))
	}
	// The dump is frozen: later records do not change it.
	f.RecordEvent("fleet-lead", "later", epoch.Add(time.Second))
	reason, last := f.LastDump()
	if reason != "worker-crash agent-1" || len(last) != 1 || last[0].Name != "worker-crash" {
		t.Fatalf("LastDump = %q %+v, want frozen single-record dump", reason, last)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(SpanRecord{ID: 1})
	f.RecordEvent("p", "e", epoch)
	if f.Capacity() != 0 || f.Total() != 0 {
		t.Fatal("nil recorder reports non-zero size")
	}
	if f.Snapshot() != nil || f.DumpNow("x") != nil {
		t.Fatal("nil recorder returned records")
	}
	if reason, dump := f.LastDump(); reason != "" || dump != nil {
		t.Fatal("nil recorder returned a dump")
	}
}

func TestWriteFlightDumpFormat(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(SpanRecord{
		ID: 2, Trace: 2, Proc: "agent-0", Name: "worker.rank_step",
		Start: epoch, End: epoch.Add(3 * time.Millisecond),
		Attrs: []Attr{{Key: "rank", Value: "0"}},
	})
	f.RecordEvent("chaos", "net.partition", epoch.Add(5*time.Millisecond))
	var sb strings.Builder
	if err := WriteFlightDump(&sb, "test", f.Snapshot()); err != nil {
		t.Fatalf("WriteFlightDump: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`flight dump: reason="test" records=2`,
		"worker.rank_step rank=0",
		"proc=chaos",
		"net.partition",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestRecorderFeedsFlight: a Recorder with an attached flight recorder
// copies every finished span into the ring, even spans dropped by the
// recorder's own cap.
func TestRecorderFeedsFlight(t *testing.T) {
	rec := NewRecorder(clock.NewSim(epoch), 1)
	f := NewFlightRecorder(8)
	rec.SetFlightRecorder(f)
	rec.StartSpan("kept").End()
	rec.StartSpan("capped").End() // dropped by the recorder, kept by the ring
	if rec.Len() != 1 || rec.Dropped() != 1 {
		t.Fatalf("recorder Len=%d Dropped=%d, want 1 and 1", rec.Len(), rec.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Name != "kept" || snap[1].Name != "capped" {
		t.Fatalf("flight snapshot = %+v, want both spans", snap)
	}
}
