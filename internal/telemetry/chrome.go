package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (the subset chrome://tracing and Perfetto consume): "M" metadata events
// naming processes, "X" complete events for spans, "i" instant events for
// span events, and "s"/"f" flow events drawing cross-process causality
// arrows.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   uint64            `json:"tid"`
	ID    uint64            `json:"id,omitempty"` // flow binding id
	BP    string            `json:"bp,omitempty"` // flow binding point
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each logical
// process (SpanRecord.Proc; empty renders as "main") becomes a pid with a
// process_name metadata event, so Perfetto groups tracks by process.
// Within a process, a span tree is placed on the track of its topmost
// same-process ancestor (tid = that span's ID), so nested spans stack by
// time containment and concurrent operations get separate rows. A span
// whose recorded parent lives in a different process additionally emits an
// "s"→"f" flow pair, so Perfetto draws the causality arrow across
// processes. Timestamps are microseconds relative to the earliest span
// start, which keeps the numbers small under both wall and simulated
// epochs.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	if len(spans) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var origin time.Time
	for i, s := range spans {
		if i == 0 || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	// Deterministic pid assignment: sorted process names, 1-based.
	procSet := make(map[string]bool, 4)
	for _, s := range spans {
		procSet[procLabel(s.Proc)] = true
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	pidOf := make(map[string]int, len(procs))
	for i, p := range procs {
		pidOf[p] = i + 1
	}
	byID := make(map[uint64]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	// track resolves the span's row: climb parents while they exist in the
	// snapshot and stay in the same process; the topmost such ancestor's ID
	// is the tid. Cross-process edges break the climb (they become flow
	// arrows instead of nesting).
	track := func(s SpanRecord) uint64 {
		cur := s
		for cur.Parent != 0 {
			p, ok := byID[cur.Parent]
			if !ok || procLabel(p.Proc) != procLabel(cur.Proc) {
				break
			}
			cur = p
		}
		return cur.ID
	}
	micros := func(t time.Time) float64 {
		return float64(t.Sub(origin)) / float64(time.Microsecond)
	}
	events := make([]chromeEvent, 0, len(spans)+len(procs))
	for _, p := range procs {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pidOf[p],
			Args:  map[string]string{"name": p},
		})
	}
	for _, s := range spans {
		pid := pidOf[procLabel(s.Proc)]
		tid := track(s)
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   "elan",
			Phase: "X",
			TS:    micros(s.Start),
			Dur:   micros(s.End) - micros(s.Start),
			PID:   pid,
			TID:   tid,
			Args:  args,
		})
		for _, ev := range s.Events {
			events = append(events, chromeEvent{
				Name:  s.Name + "/" + ev.Name,
				Cat:   "elan",
				Phase: "i",
				TS:    micros(ev.At),
				PID:   pid,
				TID:   tid,
				Scope: "t",
			})
		}
		if p, ok := byID[s.Parent]; ok && procLabel(p.Proc) != procLabel(s.Proc) {
			// Cross-process edge: flow arrow from the parent span's track
			// to this span's start. The flow id is the child span's ID
			// (unique per edge).
			events = append(events, chromeEvent{
				Name:  "causal",
				Cat:   "elan.flow",
				Phase: "s",
				TS:    micros(p.Start),
				PID:   pidOf[procLabel(p.Proc)],
				TID:   track(p),
				ID:    s.ID,
			}, chromeEvent{
				Name:  "causal",
				Cat:   "elan.flow",
				Phase: "f",
				TS:    micros(s.Start),
				PID:   pid,
				TID:   tid,
				ID:    s.ID,
				BP:    "e",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
