package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (the subset chrome://tracing and Perfetto consume): "X" complete events
// for spans and "i" instant events for span events.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   uint64            `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each root
// span's tree is placed on its own track (tid = root span ID), so nested
// spans stack by time containment and concurrent operations get separate
// rows. Timestamps are microseconds relative to the earliest span start,
// which keeps the numbers small under both wall and simulated epochs.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	if len(spans) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var origin time.Time
	for i, s := range spans {
		if i == 0 || s.Start.Before(origin) {
			origin = s.Start
		}
	}
	// Resolve each span's root for track assignment.
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	root := func(id uint64) uint64 {
		for parent[id] != 0 {
			id = parent[id]
		}
		return id
	}
	micros := func(t time.Time) float64 {
		return float64(t.Sub(origin)) / float64(time.Microsecond)
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		tid := root(s.ID)
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   "elan",
			Phase: "X",
			TS:    micros(s.Start),
			Dur:   micros(s.End) - micros(s.Start),
			PID:   1,
			TID:   tid,
			Args:  args,
		})
		for _, ev := range s.Events {
			events = append(events, chromeEvent{
				Name:  s.Name + "/" + ev.Name,
				Cat:   "elan",
				Phase: "i",
				TS:    micros(ev.At),
				PID:   1,
				TID:   tid,
				Scope: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
