package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/elan-sys/elan/internal/metrics"
)

// Phase classifies where a span's time goes in the step-time attribution:
// the taxonomy the paper's overhead claims are stated in.
type Phase int

const (
	// PhaseOther is unclassified time inside a rank step (container spans,
	// unknown names). It claims nothing in the sweep.
	PhaseOther Phase = iota
	// PhaseCompute is forward/backward/optimizer work on the rank.
	PhaseCompute
	// PhaseComm is collective communication (allreduce and friends).
	PhaseComm
	// PhaseCoord is control-plane time: transport calls, coordinator
	// round-trips, adjustment application, state installation.
	PhaseCoord
)

func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseComm:
		return "comm"
	case PhaseCoord:
		return "coord"
	default:
		return "other"
	}
}

// ClassifySpan maps a span name to its attribution phase. Container spans
// (rank steps, whole-step spans) classify as PhaseOther so only leaf work
// claims time.
func ClassifySpan(name string) Phase {
	switch {
	case strings.HasSuffix(name, ".forward"), strings.HasSuffix(name, ".backward"),
		strings.HasSuffix(name, ".optimize"):
		return PhaseCompute
	case strings.HasPrefix(name, "collective."):
		return PhaseComm
	case strings.HasPrefix(name, "transport."), strings.HasPrefix(name, "coord."),
		name == "worker.apply_adjustment", name == "worker.request_scale_out",
		name == "worker.request_scale_in", name == "worker.install_state",
		name == "worker.report_ready":
		return PhaseCoord
	default:
		return PhaseOther
	}
}

// RankStep is the attribution of one rank's share of one training step: how
// its wall time inside the worker.rank_step / core.rank_step span splits
// into phases. Stall is the uncovered remainder — time inside the rank step
// that no classified child span accounts for.
type RankStep struct {
	Iter      int           `json:"iter"`
	Rank      string        `json:"rank"`
	Proc      string        `json:"proc,omitempty"`
	Total     time.Duration `json:"total"`
	Compute   time.Duration `json:"compute"`
	Comm      time.Duration `json:"comm"`
	Coord     time.Duration `json:"coord"`
	Stall     time.Duration `json:"stall"`
	Straggler bool          `json:"straggler,omitempty"`
}

// StepAttribution aggregates all ranks of one step.
type StepAttribution struct {
	Iter       int           `json:"iter"`
	Ranks      int           `json:"ranks"`
	Total      time.Duration `json:"total"`
	Compute    time.Duration `json:"compute"`
	Comm       time.Duration `json:"comm"`
	Coord      time.Duration `json:"coord"`
	Stall      time.Duration `json:"stall"`
	Stragglers []string      `json:"stragglers,omitempty"`
}

// AttribSummary is the full per-step time attribution of a trace.
type AttribSummary struct {
	Steps     []StepAttribution `json:"steps"`
	RankSteps []RankStep        `json:"rank_steps"`

	// Fleet-wide totals across all rank steps.
	Total   time.Duration `json:"total"`
	Compute time.Duration `json:"compute"`
	Comm    time.Duration `json:"comm"`
	Coord   time.Duration `json:"coord"`
	Stall   time.Duration `json:"stall"`

	// P95 is the fleet 95th percentile of rank-step totals, the straggler
	// reference point; StragglerEvents counts flagged (step, rank) pairs.
	P95             time.Duration `json:"p95"`
	StragglerEvents int           `json:"straggler_events"`
}

type interval struct {
	start, end time.Time
	phase      Phase
}

// Attribute folds per-rank span trees into compute/comm/stall/coord phase
// totals per step. Every span named *.rank_step roots one rank's share of a
// step (its "iter" and "rank" attributes key the grouping); the classified
// descendants of that span — plus any span elsewhere in the trace that is a
// causal descendant, like the allreduce a reducer runs on the rank's behalf
// — claim time with priority compute > comm > coord where they overlap, and
// whatever remains uncovered is stall.
//
// A rank is flagged a straggler when its step total reaches the fleet P95
// of all rank-step totals and exceeds 1.5x the median of its own step —
// "slow for the fleet and slower than its peers this step". (P95 is
// nearest-rank, so for small fleets it is the slowest sample; the median
// guard is what keeps uniform steps unflagged.)
func Attribute(spans []SpanRecord) AttribSummary {
	byID := make(map[uint64]SpanRecord, len(spans))
	children := make(map[uint64][]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}

	var rankSteps []RankStep
	for _, rs := range spans {
		if !strings.HasSuffix(rs.Name, ".rank_step") {
			continue
		}
		iter := attrInt(rs, "iter", -1)
		rank := attrOr(rs, "rank", rs.Proc)
		var ivs []interval
		var walk func(id uint64)
		walk = func(id uint64) {
			for _, c := range children[id] {
				if p := ClassifySpan(c.Name); p != PhaseOther {
					ivs = append(ivs, clip(c.Start, c.End, rs.Start, rs.End, p))
				}
				walk(c.ID)
			}
		}
		walk(rs.ID)
		step := RankStep{Iter: iter, Rank: rank, Proc: rs.Proc, Total: rs.End.Sub(rs.Start)}
		step.Compute, step.Comm, step.Coord = sweep(ivs)
		step.Stall = step.Total - step.Compute - step.Comm - step.Coord
		if step.Stall < 0 {
			step.Stall = 0
		}
		rankSteps = append(rankSteps, step)
	}
	sort.Slice(rankSteps, func(i, j int) bool {
		if rankSteps[i].Iter != rankSteps[j].Iter {
			return rankSteps[i].Iter < rankSteps[j].Iter
		}
		return rankSteps[i].Rank < rankSteps[j].Rank
	})

	sum := AttribSummary{RankSteps: rankSteps}
	if len(rankSteps) == 0 {
		return sum
	}

	// Fleet P95 of rank-step totals.
	totals := make([]time.Duration, len(rankSteps))
	for i, s := range rankSteps {
		totals[i] = s.Total
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	sum.P95 = totals[(len(totals)*95)/100]

	// Group by iter, flag stragglers against the step median.
	byIter := make(map[int][]int)
	var iters []int
	for i, s := range rankSteps {
		if _, ok := byIter[s.Iter]; !ok {
			iters = append(iters, s.Iter)
		}
		byIter[s.Iter] = append(byIter[s.Iter], i)
	}
	sort.Ints(iters)
	for _, iter := range iters {
		idx := byIter[iter]
		med := medianTotal(rankSteps, idx)
		sa := StepAttribution{Iter: iter, Ranks: len(idx)}
		for _, i := range idx {
			s := &rankSteps[i]
			if s.Total >= sum.P95 && s.Total > med+med/2 {
				s.Straggler = true
				sa.Stragglers = append(sa.Stragglers, s.Rank)
				sum.StragglerEvents++
			}
			sa.Total += s.Total
			sa.Compute += s.Compute
			sa.Comm += s.Comm
			sa.Coord += s.Coord
			sa.Stall += s.Stall
		}
		sum.Steps = append(sum.Steps, sa)
		sum.Total += sa.Total
		sum.Compute += sa.Compute
		sum.Comm += sa.Comm
		sum.Coord += sa.Coord
		sum.Stall += sa.Stall
	}
	return sum
}

// sweep resolves overlapping phase intervals with priority compute > comm >
// coord and returns the exclusive time claimed by each phase.
func sweep(ivs []interval) (compute, comm, coord time.Duration) {
	if len(ivs) == 0 {
		return 0, 0, 0
	}
	cuts := make([]time.Time, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.end.After(iv.start) {
			cuts = append(cuts, iv.start, iv.end)
		}
	}
	if len(cuts) == 0 {
		return 0, 0, 0
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].Before(cuts[j]) })
	for i := 1; i < len(cuts); i++ {
		a, b := cuts[i-1], cuts[i]
		if !b.After(a) {
			continue
		}
		best := PhaseOther
		for _, iv := range ivs {
			if !iv.start.After(a) && !iv.end.Before(b) {
				best = maxPhase(best, iv.phase)
			}
		}
		d := b.Sub(a)
		switch best {
		case PhaseCompute:
			compute += d
		case PhaseComm:
			comm += d
		case PhaseCoord:
			coord += d
		}
	}
	return compute, comm, coord
}

// maxPhase returns the higher-priority phase (compute > comm > coord >
// other).
func maxPhase(a, b Phase) Phase {
	rank := func(p Phase) int {
		switch p {
		case PhaseCompute:
			return 3
		case PhaseComm:
			return 2
		case PhaseCoord:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

func clip(start, end, lo, hi time.Time, p Phase) interval {
	if start.Before(lo) {
		start = lo
	}
	if end.After(hi) {
		end = hi
	}
	return interval{start: start, end: end, phase: p}
}

func medianTotal(steps []RankStep, idx []int) time.Duration {
	totals := make([]time.Duration, len(idx))
	for i, j := range idx {
		totals[i] = steps[j].Total
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	return totals[len(totals)/2]
}

func attrInt(s SpanRecord, key string, def int) int {
	v, ok := s.Attr(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func attrOr(s SpanRecord, key, def string) string {
	if v, ok := s.Attr(key); ok {
		return v
	}
	return def
}

// Publish surfaces the attribution as Prometheus gauges on reg. Gauges (not
// counters) so re-attributing a fresh trace replaces the values.
func (a AttribSummary) Publish(reg *Registry) {
	if reg == nil {
		return
	}
	secs := func(d time.Duration) float64 { return d.Seconds() }
	reg.Gauge("attrib_compute_seconds").Set(secs(a.Compute))
	reg.Gauge("attrib_comm_seconds").Set(secs(a.Comm))
	reg.Gauge("attrib_coord_seconds").Set(secs(a.Coord))
	reg.Gauge("attrib_stall_seconds").Set(secs(a.Stall))
	reg.Gauge("attrib_step_total_seconds").Set(secs(a.Total))
	reg.Gauge("attrib_rank_steps").Set(float64(len(a.RankSteps)))
	reg.Gauge("attrib_straggler_events").Set(float64(a.StragglerEvents))
	reg.Gauge("attrib_p95_seconds").Set(secs(a.P95))
}

// WriteAttribution renders the summary as a per-step table plus fleet
// totals.
func WriteAttribution(w io.Writer, a AttribSummary) error {
	if len(a.RankSteps) == 0 {
		_, err := fmt.Fprintln(w, "attribution: no rank-step spans in trace")
		return err
	}
	t := metrics.NewTable("Per-step time attribution",
		"step", "ranks", "total", "compute", "comm", "coord", "stall", "stragglers")
	for _, s := range a.Steps {
		t.AddRow(s.Iter, s.Ranks, s.Total.String(), s.Compute.String(),
			s.Comm.String(), s.Coord.String(), s.Stall.String(),
			strings.Join(s.Stragglers, ","))
	}
	t.Render(w)
	pct := func(d time.Duration) float64 {
		if a.Total == 0 {
			return 0
		}
		return 100 * float64(d) / float64(a.Total)
	}
	_, err := fmt.Fprintf(w,
		"fleet: rank-steps=%d total=%v compute=%.1f%% comm=%.1f%% coord=%.1f%% stall=%.1f%% p95=%v stragglers=%d\n",
		len(a.RankSteps), a.Total, pct(a.Compute), pct(a.Comm), pct(a.Coord),
		pct(a.Stall), a.P95, a.StragglerEvents)
	return err
}
