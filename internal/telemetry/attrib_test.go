package telemetry

import (
	"strings"
	"testing"
	"time"

	"github.com/elan-sys/elan/internal/clock"
)

// buildRankStep records one rank's step with the given phase layout:
// compute [0, c), comm [c-overlap, c-overlap+m) (overlap claimed by
// compute), then idle until total.
func buildRankStep(rec *Recorder, sim *clock.Sim, rank, iter int, compute, comm, idle time.Duration) {
	s := rec.StartSpan("worker.rank_step")
	s.SetProc("agent")
	s.AnnotateInt("rank", rank)
	s.AnnotateInt("iter", iter)
	f := s.Child("worker.forward")
	sim.Advance(compute)
	f.End()
	c := s.Child("collective.allreduce")
	sim.Advance(comm)
	c.End()
	sim.Advance(idle)
	s.End()
}

func TestAttributePhases(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	buildRankStep(rec, sim, 0, 3, 100*time.Millisecond, 40*time.Millisecond, 10*time.Millisecond)
	buildRankStep(rec, sim, 1, 3, 90*time.Millisecond, 50*time.Millisecond, 0)

	a := Attribute(rec.Snapshot())
	if len(a.RankSteps) != 2 || len(a.Steps) != 1 {
		t.Fatalf("rank steps = %d, steps = %d, want 2 and 1", len(a.RankSteps), len(a.Steps))
	}
	r0 := a.RankSteps[0]
	if r0.Rank != "0" || r0.Iter != 3 {
		t.Fatalf("rank step order/keys wrong: %+v", r0)
	}
	if r0.Compute != 100*time.Millisecond || r0.Comm != 40*time.Millisecond || r0.Stall != 10*time.Millisecond {
		t.Errorf("rank 0 = compute %v comm %v stall %v, want 100ms/40ms/10ms",
			r0.Compute, r0.Comm, r0.Stall)
	}
	st := a.Steps[0]
	if st.Ranks != 2 || st.Compute != 190*time.Millisecond || st.Comm != 90*time.Millisecond {
		t.Errorf("step totals = %+v, want ranks=2 compute=190ms comm=90ms", st)
	}
	if a.Total != st.Total || a.StragglerEvents != 0 {
		t.Errorf("summary totals = %v stragglers = %d", a.Total, a.StragglerEvents)
	}
}

// TestAttributeOverlapPriority: where compute and comm overlap, compute
// claims the time exactly once.
func TestAttributeOverlapPriority(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	s := rec.StartSpan("core.rank_step")
	s.AnnotateInt("rank", 0)
	s.AnnotateInt("iter", 0)
	b := s.Child("ddp.backward")         // compute [0, 100ms)
	c := s.Child("collective.allreduce") // comm [0, 150ms), overlapping
	sim.Advance(100 * time.Millisecond)
	b.End()
	sim.Advance(50 * time.Millisecond)
	c.End()
	s.End()
	a := Attribute(rec.Snapshot())
	r := a.RankSteps[0]
	if r.Compute != 100*time.Millisecond || r.Comm != 50*time.Millisecond || r.Stall != 0 {
		t.Fatalf("overlap split = compute %v comm %v stall %v, want 100ms/50ms/0",
			r.Compute, r.Comm, r.Stall)
	}
}

// TestAttributeStraggler: a rank far slower than both the fleet P95 and its
// step's median is flagged.
func TestAttributeStraggler(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	for iter := 0; iter < 5; iter++ {
		for rank := 0; rank < 3; rank++ {
			d := 100 * time.Millisecond
			if iter == 4 && rank == 2 {
				d = 400 * time.Millisecond // the straggler
			}
			buildRankStep(rec, sim, rank, iter, d, 0, 0)
		}
	}
	a := Attribute(rec.Snapshot())
	if a.StragglerEvents != 1 {
		t.Fatalf("straggler events = %d, want 1", a.StragglerEvents)
	}
	last := a.Steps[len(a.Steps)-1]
	if len(last.Stragglers) != 1 || last.Stragglers[0] != "2" {
		t.Fatalf("stragglers = %v, want [2]", last.Stragglers)
	}
	for _, rs := range a.RankSteps {
		if rs.Straggler != (rs.Iter == 4 && rs.Rank == "2") {
			t.Errorf("straggler flag wrong on iter=%d rank=%s", rs.Iter, rs.Rank)
		}
	}
}

func TestClassifySpan(t *testing.T) {
	cases := map[string]Phase{
		"worker.forward":          PhaseCompute,
		"ddp.backward":            PhaseCompute,
		"core.optimize":           PhaseCompute,
		"collective.allreduce":    PhaseComm,
		"transport.call":          PhaseCoord,
		"coord.adjust_request":    PhaseCoord,
		"worker.apply_adjustment": PhaseCoord,
		"worker.install_state":    PhaseCoord,
		"worker.rank_step":        PhaseOther,
		"core.step":               PhaseOther,
	}
	for name, want := range cases {
		if got := ClassifySpan(name); got != want {
			t.Errorf("ClassifySpan(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestAttributePublishAndWrite(t *testing.T) {
	sim := clock.NewSim(epoch)
	rec := NewRecorder(sim, 0)
	buildRankStep(rec, sim, 0, 0, 100*time.Millisecond, 50*time.Millisecond, 0)
	a := Attribute(rec.Snapshot())

	reg := NewRegistry()
	a.Publish(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"attrib_compute_seconds 0.1", "attrib_comm_seconds 0.05", "attrib_rank_steps 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, sb.String())
		}
	}
	a.Publish(nil) // nil registry is a no-op

	sb.Reset()
	if err := WriteAttribution(&sb, a); err != nil {
		t.Fatalf("WriteAttribution: %v", err)
	}
	if !strings.Contains(sb.String(), "rank-steps=1") {
		t.Errorf("summary line missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteAttribution(&sb, AttribSummary{}); err != nil {
		t.Fatalf("WriteAttribution empty: %v", err)
	}
	if !strings.Contains(sb.String(), "no rank-step spans") {
		t.Errorf("empty summary message missing:\n%s", sb.String())
	}
}
