package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("transport_calls_total").Add(42)
	srv, err := NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body = get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "transport_calls_total 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	// Metrics are live, not a construction-time snapshot.
	reg.Counter("transport_calls_total").Inc()
	if _, body = get(t, "http://"+srv.Addr()+"/metrics"); !strings.Contains(body, "transport_calls_total 43") {
		t.Errorf("/metrics not live:\n%s", body)
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	srv, err := NewDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer srv.Close()
	if code, body := get(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry = %d %q", code, body)
	}
}

// TestDebugServerShutdownNoLeak: Close tears down the serve goroutine and
// every connection goroutine.
func TestDebugServerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := NewDebugServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	get(t, "http://"+srv.Addr()+"/healthz")
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitNumGoroutine(t, before)
	// Closing twice is safe.
	_ = srv.Close()
}

// TestDebugServerConcurrentRegistration: /metrics snapshots taken while
// other goroutines are registering and bumping new instruments stay
// well-formed and eventually expose everything registered.
func TestDebugServerConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	srv, err := NewDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer srv.Close()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				reg.Counter(fmt.Sprintf("conc_counter_%d_%d", w, i)).Inc()
				reg.Gauge(fmt.Sprintf("conc_gauge_%d_%d", w, i)).Set(1)
			}
		}()
	}
	// Scrape concurrently with the registrations; every response must be a
	// valid snapshot (complete lines, no torn values).
	for i := 0; i < 10; i++ {
		code, body := get(t, "http://"+srv.Addr()+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if fields := strings.Fields(line); len(fields) != 2 {
				t.Fatalf("torn metrics line %q", line)
			}
		}
	}
	wg.Wait()
	_, body := get(t, "http://"+srv.Addr()+"/metrics")
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if !strings.Contains(body, fmt.Sprintf("conc_counter_%d_%d 1", w, i)) {
				t.Fatalf("missing conc_counter_%d_%d after registration settled", w, i)
			}
		}
	}
}
