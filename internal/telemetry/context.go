package telemetry

import "context"

type spanKey struct{}

// ContextWithSpan returns a context carrying the span, so layers that
// already thread a context.Context (transport calls, coord clients) can
// propagate causality without new parameters. A nil span returns ctx
// unchanged — the disabled path allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
