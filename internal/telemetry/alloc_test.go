package telemetry

import "testing"

// nopStepPath replays exactly the instrumentation sequence of the worker
// step hot path (worker.Fleet.Step plus the collective allreduce it
// triggers) against a disabled tracer and nil instruments.
func nopStepPath(tr Tracer, steps *Counter, secs *Histogram) {
	span := tr.StartSpan("worker.step")
	span.AnnotateInt("iter", 17)
	child := span.Child("collective.allreduce")
	child.Annotate("link", "inproc")
	child.AnnotateInt("elements", 1024)
	child.End()
	span.Event("noop")
	secs.Observe(0.001)
	steps.Inc()
	span.End()
}

// TestNopPathZeroAllocs is the contract behind "telemetry off is free":
// the full instrumented step sequence performs no allocations when the
// tracer is Nop and the instruments came from a nil Registry.
func TestNopPathZeroAllocs(t *testing.T) {
	tr := OrNop(nil)
	var reg *Registry
	steps := reg.Counter("worker_steps_total")
	secs := reg.Histogram("worker_step_seconds")
	allocs := testing.AllocsPerRun(1000, func() {
		nopStepPath(tr, steps, secs)
	})
	if allocs != 0 {
		t.Fatalf("nop step path allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkNopStepPath quantifies the disabled-path cost; run with -benchmem
// to see the 0 B/op, 0 allocs/op line.
func BenchmarkNopStepPath(b *testing.B) {
	tr := OrNop(nil)
	var reg *Registry
	steps := reg.Counter("worker_steps_total")
	secs := reg.Histogram("worker_step_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nopStepPath(tr, steps, secs)
	}
}

// BenchmarkLiveStepPath is the comparison point: the same sequence against
// a live recorder and registry.
func BenchmarkLiveStepPath(b *testing.B) {
	rec := NewRecorder(nil, 1) // cap at one span: steady-state drops, no growth
	reg := NewRegistry()
	steps := reg.Counter("worker_steps_total")
	secs := reg.Histogram("worker_step_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nopStepPath(rec, steps, secs)
	}
}
