package sched

import (
	"math"
	"testing"

	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
)

func TestEstimatorValidation(t *testing.T) {
	e := NewThroughputEstimator()
	if err := e.Observe(0, 100); err == nil {
		t.Fatal("zero workers accepted")
	}
	if err := e.Observe(4, 0); err == nil {
		t.Fatal("zero throughput accepted")
	}
	if _, err := e.Predict(4); err == nil {
		t.Fatal("prediction without observations accepted")
	}
	if err := e.Observe(4, 100); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if _, err := e.Predict(0); err == nil {
		t.Fatal("predict at 0 accepted")
	}
}

func TestEstimatorFallbackLinear(t *testing.T) {
	e := NewThroughputEstimator()
	if err := e.Observe(4, 400); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	// Single observation: linear extrapolation.
	got, err := e.Predict(8)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if math.Abs(got-800) > 1e-9 {
		t.Fatalf("Predict(8) = %v, want 800", got)
	}
}

func TestEstimatorFitsPerfModel(t *testing.T) {
	// Feed the estimator "measurements" from the analytic model and check
	// interpolation accuracy at an unseen worker count.
	p := perfmodel.Default()
	m := models.ResNet50()
	e := NewThroughputEstimator()
	tbs := 512
	for _, n := range []int{4, 8, 16, 64} {
		tp, err := p.ThroughputTBS(m, n, tbs)
		if err != nil {
			t.Fatalf("ThroughputTBS: %v", err)
		}
		if err := e.Observe(n, tp); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if e.NumObservations() != 4 {
		t.Fatalf("NumObservations = %d", e.NumObservations())
	}
	truth, err := p.ThroughputTBS(m, 32, tbs)
	if err != nil {
		t.Fatalf("ThroughputTBS: %v", err)
	}
	got, err := e.Predict(32)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	relErr := math.Abs(got-truth) / truth
	if relErr > 0.25 {
		t.Fatalf("Predict(32) = %v vs truth %v (%.0f%% error)", got, truth, 100*relErr)
	}
}

func TestEstimatorMarginalGainDiminishes(t *testing.T) {
	// On strong-scaling data the marginal gain must diminish for large N.
	p := perfmodel.Default()
	m := models.VGG19()
	e := NewThroughputEstimator()
	for _, n := range []int{16, 32, 64, 128} {
		tp, err := p.ThroughputTBS(m, n, 2048)
		if err != nil {
			t.Fatalf("ThroughputTBS: %v", err)
		}
		if err := e.Observe(n, tp); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	gSmall, err := e.MarginalGain(16)
	if err != nil {
		t.Fatalf("MarginalGain: %v", err)
	}
	gLarge, err := e.MarginalGain(120)
	if err != nil {
		t.Fatalf("MarginalGain: %v", err)
	}
	if gLarge >= gSmall {
		t.Fatalf("marginal gain not diminishing: g(16)=%v g(120)=%v", gSmall, gLarge)
	}
}

func TestSolve3Known(t *testing.T) {
	// x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 -> x=5, y=3, z=-2.
	m := [3][3]float64{{1, 1, 1}, {0, 2, 5}, {2, 5, -1}}
	v := [3]float64{6, -4, 27}
	x, ok := solve3(m, v)
	if !ok {
		t.Fatal("solve3 failed")
	}
	want := [3]float64{5, 3, -2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Singular system.
	if _, ok := solve3([3][3]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}, v); ok {
		t.Fatal("singular system solved")
	}
}
