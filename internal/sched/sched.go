// Package sched is the discrete-time cluster scheduling simulator of
// Section VI-C: it replays a job trace against a GPU cluster under four
// policies — FIFO, Backfill (BF), and their elastic variants (E-FIFO,
// E-BF) built on the paper's admission and allocation rules — and under
// three elasticity systems (Ideal, Elan, S&R) whose runtime overheads and
// adjustment pauses are charged to the jobs. The statistics it reports are
// the paper's: job pending time (JPT), job completion time (JCT), makespan
// and GPU utilization over time.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/elan-sys/elan/internal/checkpoint"
	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/core"
	"github.com/elan-sys/elan/internal/metrics"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/perfmodel"
	"github.com/elan-sys/elan/internal/telemetry"
	"github.com/elan-sys/elan/internal/trace"
)

// Policy selects the scheduling discipline.
type Policy int

const (
	// FIFO starts jobs strictly in submission order.
	FIFO Policy = iota + 1
	// Backfill lets later jobs start early when they do not delay the
	// queue head (EASY backfill on estimated finish times).
	Backfill
	// ElasticFIFO is FIFO plus the paper's elastic admission and
	// allocation rules.
	ElasticFIFO
	// ElasticBackfill is Backfill plus the elastic rules.
	ElasticBackfill
)

// String names the policy as in Figure 20.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case Backfill:
		return "BF"
	case ElasticFIFO:
		return "E-FIFO"
	case ElasticBackfill:
		return "E-BF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Elastic reports whether the policy adjusts resources at runtime.
func (p Policy) Elastic() bool { return p == ElasticFIFO || p == ElasticBackfill }

// System models the elasticity substrate's costs (Figure 22).
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Overhead is the relative steady-state throughput loss.
	Overhead() float64
	// Pause returns the training pause charged for one adjustment.
	Pause(kind coord.Kind, m models.Model, oldWorkers, newWorkers int) time.Duration
}

// IdealSystem has zero overhead and instantaneous adjustments.
type IdealSystem struct{}

// Name implements System.
func (IdealSystem) Name() string { return "Ideal" }

// Overhead implements System.
func (IdealSystem) Overhead() float64 { return 0 }

// Pause implements System.
func (IdealSystem) Pause(coord.Kind, models.Model, int, int) time.Duration { return 0 }

// ElanSystem charges Elan's costs: sub-permille overhead and ~1s pauses.
type ElanSystem struct {
	Costs core.SystemCosts
	rng   *rand.Rand
}

// NewElanSystem builds the Elan cost model.
func NewElanSystem(seed int64) *ElanSystem {
	return &ElanSystem{Costs: core.DefaultSystemCosts(), rng: rand.New(rand.NewSource(seed))}
}

// Name implements System.
func (e *ElanSystem) Name() string { return "Elan" }

// Overhead implements System: one coordination per iteration at ~300µs
// against ~200ms iterations is well under 3 per-mille.
func (e *ElanSystem) Overhead() float64 { return 0.0015 }

// Pause implements System: replication (for scale-out/migration) plus
// repartition and group reconstruction.
func (e *ElanSystem) Pause(kind coord.Kind, m models.Model, oldWorkers, newWorkers int) time.Duration {
	base := e.Costs.CoordTime(e.rng, oldWorkers) +
		e.Costs.Repartition +
		e.Costs.GroupReconstructTime(e.rng, newWorkers)
	if kind == coord.ScaleIn {
		return base
	}
	// Approximate the concurrent replication by one P2P/SHM-class transfer.
	repl := time.Duration(float64(m.GPUStateBytes()) / 8e9 * float64(time.Second))
	return base + repl
}

// SRSystem charges Shutdown-&-Restart costs.
type SRSystem struct {
	costs core.SystemCosts
	fs    checkpoint.FSModel
	rng   *rand.Rand
}

// NewSRSystem builds the S&R cost model.
func NewSRSystem(seed int64) *SRSystem {
	return &SRSystem{
		costs: core.DefaultSystemCosts(),
		fs:    checkpoint.DefaultFSModel(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Name implements System.
func (s *SRSystem) Name() string { return "S&R" }

// Overhead implements System: same periodic coordination as Elan.
func (s *SRSystem) Overhead() float64 { return 0.0015 }

// Pause implements System: checkpoint + (restart for scaling) + load.
func (s *SRSystem) Pause(kind coord.Kind, m models.Model, oldWorkers, newWorkers int) time.Duration {
	gpu, cpu := m.GPUStateBytes(), m.CPUStateBytes
	pause := s.fs.SaveTime(gpu, cpu) + s.fs.LoadTime(gpu, cpu, newWorkers)
	if kind != coord.Migrate {
		pause += s.costs.ShutdownTime + s.costs.WorkerStart + s.costs.WorkerInit
	}
	return perfmodel.Jitter(s.rng, pause, s.costs.JitterRel)
}

// Config parametrizes a simulation run.
type Config struct {
	Policy Policy
	System System
	// GPUs is the cluster size (128 in the paper).
	GPUs int
	// Tick is the simulation step.
	Tick time.Duration
	// ReallocEvery is how often the elastic allocation rule re-runs.
	ReallocEvery time.Duration
	// Perf is the throughput model.
	Perf *perfmodel.Perf
	// MinEfficientBatch floors the per-worker batch under strong scaling:
	// below it the hybrid rule grows the total batch instead (the
	// "minimum total batch size without under-utilization").
	MinEfficientBatch int
	// CapacityFn, when set, makes the GPU pool time-varying (transient /
	// spot capacity): at each tick the cluster holds CapacityFn(now) GPUs,
	// clamped to [0, GPUs]. Requires an elastic policy: when capacity is
	// reclaimed, running jobs are shrunk (to min_res and, in emergencies,
	// below) to fit.
	CapacityFn func(time.Duration) int
	// Metrics, when set, receives the scheduler's counters and the
	// queueing-delay histogram (sched_queue_seconds). The simulator runs on
	// virtual time, so delays are observed in virtual seconds; a nil
	// registry disables everything at zero cost.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the paper's experimental setup for a policy/system.
func DefaultConfig(p Policy, sys System) Config {
	return Config{
		Policy:            p,
		System:            sys,
		GPUs:              128,
		Tick:              time.Second,
		ReallocEvery:      2 * time.Minute,
		Perf:              perfmodel.Default(),
		MinEfficientBatch: 8,
	}
}

// JobStats is the per-job outcome.
type JobStats struct {
	ID      int
	Submit  time.Duration
	Start   time.Duration
	Finish  time.Duration
	Pending time.Duration // Start - Submit (JPT)
	JCT     time.Duration // Finish - Submit
}

// Result aggregates a run.
type Result struct {
	Policy    Policy
	System    string
	Jobs      []JobStats
	Makespan  time.Duration
	MeanJPT   time.Duration
	MeanJCT   time.Duration
	P50JCT    time.Duration
	P90JCT    time.Duration
	P90JPT    time.Duration
	UtilHours []float64
	UtilVals  []float64
}

type simJob struct {
	spec      trace.Job
	started   bool
	finished  bool
	start     time.Duration
	finish    time.Duration
	workers   int
	perBatch  int
	remaining float64
	// pausedUntil freezes progress during an adjustment.
	pausedUntil time.Duration
	rate        float64 // cached samples/sec at current allocation
}

// Run simulates the trace to completion and returns the result.
func Run(cfg Config, jobs []trace.Job) (*Result, error) {
	if cfg.GPUs <= 0 {
		return nil, fmt.Errorf("sched: non-positive GPU count")
	}
	if cfg.System == nil {
		return nil, fmt.Errorf("sched: nil system")
	}
	if cfg.Perf == nil {
		cfg.Perf = perfmodel.Default()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.ReallocEvery <= 0 {
		cfg.ReallocEvery = 2 * time.Minute
	}
	if cfg.MinEfficientBatch <= 0 {
		cfg.MinEfficientBatch = 8
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: empty trace")
	}
	if cfg.CapacityFn != nil && !cfg.Policy.Elastic() {
		return nil, fmt.Errorf("sched: transient capacity requires an elastic policy")
	}
	s := &sim{
		cfg:           cfg,
		mQueueSeconds: cfg.Metrics.Histogram("sched_queue_seconds"),
		mStarts:       cfg.Metrics.Counter("sched_jobs_started_total"),
		mAdjustments:  cfg.Metrics.Counter("sched_adjustments_total"),
		mReallocs:     cfg.Metrics.Counter("sched_realloc_runs_total"),
		mReclaims:     cfg.Metrics.Counter("sched_capacity_reclaims_total"),
	}
	for _, j := range jobs {
		if j.ReqWorkers <= 0 || j.MinWorkers <= 0 || j.MaxWorkers < j.ReqWorkers ||
			j.PerWorkerBatch <= 0 || j.TotalSamples <= 0 {
			return nil, fmt.Errorf("sched: invalid trace job %d: %+v", j.ID, j)
		}
		s.jobs = append(s.jobs, &simJob{spec: j, remaining: j.TotalSamples})
	}
	sort.SliceStable(s.jobs, func(i, k int) bool { return s.jobs[i].spec.Submit < s.jobs[k].spec.Submit })
	return s.run()
}

type sim struct {
	cfg   Config
	jobs  []*simJob
	now   time.Duration
	free  int
	total int

	// Nil-safe instruments resolved from cfg.Metrics.
	mQueueSeconds *telemetry.Histogram
	mStarts       *telemetry.Counter
	mAdjustments  *telemetry.Counter
	mReallocs     *telemetry.Counter
	mReclaims     *telemetry.Counter
}

// applyCapacity adjusts the pool to the transient capacity at the current
// time, shrinking running jobs when GPUs are reclaimed.
func (s *sim) applyCapacity(running []*simJob) {
	if s.cfg.CapacityFn == nil {
		return
	}
	want := s.cfg.CapacityFn(s.now)
	if want < 0 {
		want = 0
	}
	if want > s.cfg.GPUs {
		want = s.cfg.GPUs
	}
	if want == s.total {
		return
	}
	s.free += want - s.total
	s.total = want
	if s.free >= 0 {
		return
	}
	// Reclaim: first the allocation rule (shrinks toward min_res)...
	s.reallocate(running, 0)
	// ...then, in emergencies, strip single GPUs from the largest jobs.
	for s.free < 0 {
		var victim *simJob
		for _, j := range running {
			if j.finished || j.workers <= 1 {
				continue
			}
			if victim == nil || j.workers > victim.workers {
				victim = j
			}
		}
		if victim == nil {
			// Nothing left to reclaim (all jobs at 1 GPU): the remaining
			// debt waits for completions; stop shrinking.
			return
		}
		pause := s.cfg.System.Pause(coord.ScaleIn, victim.spec.Model, victim.workers, victim.workers-1)
		victim.workers--
		victim.perBatch = s.batchFor(victim, victim.workers)
		victim.rate = s.rate(victim)
		victim.pausedUntil = s.now + pause
		s.free++
		s.mReclaims.Inc()
		s.mAdjustments.Inc()
	}
}

func (s *sim) run() (*Result, error) {
	s.total = s.cfg.GPUs
	if s.cfg.CapacityFn != nil {
		s.total = s.cfg.CapacityFn(0)
		if s.total < 0 {
			s.total = 0
		}
		if s.total > s.cfg.GPUs {
			s.total = s.cfg.GPUs
		}
	}
	s.free = s.total
	var (
		nextArrival int
		queue       []*simJob
		running     []*simJob
		done        int
		lastRealloc time.Duration
		utilHours   []float64
		utilVals    []float64
		utilAccum   float64
		utilTicks   int
	)
	const utilSampleEvery = 5 * time.Minute
	nextUtilSample := time.Duration(0)
	// Guard against runaway simulations.
	maxTime := s.jobs[len(s.jobs)-1].spec.Submit + 14*24*time.Hour

	for done < len(s.jobs) {
		if s.now > maxTime {
			return nil, fmt.Errorf("sched: simulation exceeded %v with %d/%d jobs done",
				maxTime, done, len(s.jobs))
		}
		// Arrivals.
		for nextArrival < len(s.jobs) && s.jobs[nextArrival].spec.Submit <= s.now {
			queue = append(queue, s.jobs[nextArrival])
			nextArrival++
		}
		// Completions.
		var stillRunning []*simJob
		for _, j := range running {
			if j.finished {
				continue
			}
			stillRunning = append(stillRunning, j)
		}
		running = stillRunning

		// Transient capacity changes (spot reclaim / return).
		s.applyCapacity(running)
		// Scheduling decisions.
		queue = s.admit(queue, &running)
		if s.cfg.Policy.Elastic() && s.now-lastRealloc >= s.cfg.ReallocEvery {
			s.reallocate(running, 0)
			lastRealloc = s.now
		}
		if err := s.checkInvariants(running); err != nil {
			return nil, err
		}

		// Progress.
		tickSec := s.cfg.Tick.Seconds()
		for _, j := range running {
			if j.finished || s.now < j.pausedUntil {
				continue
			}
			j.remaining -= j.rate * tickSec * (1 - s.cfg.System.Overhead())
			if j.remaining <= 0 {
				j.finished = true
				j.finish = s.now + s.cfg.Tick
				s.free += j.workers
				j.workers = 0
				done++
			}
		}
		// Utilization accounting (busy share of the current capacity).
		if s.total > 0 {
			utilAccum += float64(s.total-s.free) / float64(s.total)
		}
		utilTicks++
		if s.now >= nextUtilSample {
			utilHours = append(utilHours, s.now.Hours())
			utilVals = append(utilVals, utilAccum/float64(utilTicks))
			utilAccum, utilTicks = 0, 0
			nextUtilSample += utilSampleEvery
		}
		s.now += s.cfg.Tick

		// Fast-forward across idle gaps (no queue, nothing running).
		if len(running) == 0 && len(queue) == 0 && nextArrival < len(s.jobs) {
			if next := s.jobs[nextArrival].spec.Submit; next > s.now {
				s.now = next
			}
		}
	}
	res := &Result{
		Policy:    s.cfg.Policy,
		System:    s.cfg.System.Name(),
		UtilHours: utilHours,
		UtilVals:  utilVals,
	}
	var first, last time.Duration
	var sumJPT, sumJCT time.Duration
	for i, j := range s.jobs {
		st := JobStats{
			ID:      j.spec.ID,
			Submit:  j.spec.Submit,
			Start:   j.start,
			Finish:  j.finish,
			Pending: j.start - j.spec.Submit,
			JCT:     j.finish - j.spec.Submit,
		}
		res.Jobs = append(res.Jobs, st)
		if i == 0 || j.spec.Submit < first {
			first = j.spec.Submit
		}
		if j.finish > last {
			last = j.finish
		}
		sumJPT += st.Pending
		sumJCT += st.JCT
	}
	res.Makespan = last - first
	res.MeanJPT = sumJPT / time.Duration(len(s.jobs))
	res.MeanJCT = sumJCT / time.Duration(len(s.jobs))
	jcts := make([]float64, len(res.Jobs))
	jpts := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		jcts[i] = j.JCT.Seconds()
		jpts[i] = j.Pending.Seconds()
	}
	res.P50JCT = time.Duration(metrics.Percentile(jcts, 50) * float64(time.Second))
	res.P90JCT = time.Duration(metrics.Percentile(jcts, 90) * float64(time.Second))
	res.P90JPT = time.Duration(metrics.Percentile(jpts, 90) * float64(time.Second))
	return res, nil
}

// checkInvariants verifies resource conservation after every scheduling
// decision: no GPU is double-allocated, free never goes negative, and every
// running job's allocation respects its bounds.
func (s *sim) checkInvariants(running []*simJob) error {
	used := 0
	for _, j := range running {
		if j.finished {
			continue
		}
		if j.workers <= 0 {
			return fmt.Errorf("sched: running job %d with %d workers at %v",
				j.spec.ID, j.workers, s.now)
		}
		if s.cfg.Policy.Elastic() && j.workers > j.spec.MaxWorkers {
			return fmt.Errorf("sched: job %d over max_res: %d > %d",
				j.spec.ID, j.workers, j.spec.MaxWorkers)
		}
		used += j.workers
	}
	if s.free < 0 && s.cfg.CapacityFn == nil {
		return fmt.Errorf("sched: negative free GPUs %d at %v", s.free, s.now)
	}
	if used+s.free != s.total {
		return fmt.Errorf("sched: GPU conservation violated: used %d + free %d != %d at %v",
			used, s.free, s.total, s.now)
	}
	return nil
}

// startJob launches j with the given workers.
func (s *sim) startJob(j *simJob, workers int, running *[]*simJob) {
	j.started = true
	j.start = s.now
	j.workers = workers
	j.perBatch = s.batchFor(j, workers)
	j.rate = s.rate(j)
	s.free -= workers
	*running = append(*running, j)
	s.mStarts.Inc()
	s.mQueueSeconds.Observe((j.start - j.spec.Submit).Seconds())
}

// admit applies the policy's admission rule and returns the new queue.
func (s *sim) admit(queue []*simJob, running *[]*simJob) []*simJob {
	switch s.cfg.Policy {
	case FIFO:
		for len(queue) > 0 && queue[0].spec.ReqWorkers <= s.free {
			s.startJob(queue[0], queue[0].spec.ReqWorkers, running)
			queue = queue[1:]
		}
		return queue
	case Backfill:
		for len(queue) > 0 && queue[0].spec.ReqWorkers <= s.free {
			s.startJob(queue[0], queue[0].spec.ReqWorkers, running)
			queue = queue[1:]
		}
		if len(queue) > 0 {
			headStart := s.estimateHeadStart(queue[0], *running)
			var rest []*simJob
			for i, j := range queue {
				if i == 0 {
					rest = append(rest, j)
					continue
				}
				if j.spec.ReqWorkers <= s.free && s.estimateFinish(j, j.spec.ReqWorkers) <= headStart {
					s.startJob(j, j.spec.ReqWorkers, running)
				} else {
					rest = append(rest, j)
				}
			}
			return rest
		}
		return queue
	case ElasticFIFO, ElasticBackfill:
		// Admission rule: a job starts as soon as min_res fits. If it does
		// not, the allocation rule first shrinks running jobs toward their
		// min_res to make room (the paper's admission integrates with the
		// allocation rule rather than waiting for the periodic cycle).
		for len(queue) > 0 {
			head := queue[0]
			if head.spec.MinWorkers > s.free {
				s.reallocate(*running, head.spec.MinWorkers)
			}
			if head.spec.MinWorkers > s.free {
				break
			}
			s.startJob(head, head.spec.MinWorkers, running)
			queue = queue[1:]
		}
		if s.cfg.Policy == ElasticBackfill && len(queue) > 0 {
			var rest []*simJob
			rest = append(rest, queue[0])
			for _, j := range queue[1:] {
				if j.spec.MinWorkers <= s.free {
					s.startJob(j, j.spec.MinWorkers, running)
				} else {
					rest = append(rest, j)
				}
			}
			return rest
		}
		return queue
	default:
		return queue
	}
}

// estimateFinish predicts when j would finish if started now at workers.
func (s *sim) estimateFinish(j *simJob, workers int) time.Duration {
	bs := s.batchFor(j, workers)
	tp, err := s.cfg.Perf.Throughput(j.spec.Model, workers, bs)
	if err != nil || tp <= 0 {
		return s.now + 365*24*time.Hour
	}
	return s.now + time.Duration(j.remaining/tp*float64(time.Second))
}

// estimateHeadStart predicts the earliest time the queue head could start,
// given currently running jobs release their GPUs at their estimated
// finish times.
func (s *sim) estimateHeadStart(head *simJob, running []*simJob) time.Duration {
	type release struct {
		at time.Duration
		n  int
	}
	var rels []release
	for _, j := range running {
		if j.finished || j.rate <= 0 {
			continue
		}
		at := s.now + time.Duration(j.remaining/j.rate*float64(time.Second))
		rels = append(rels, release{at: at, n: j.workers})
	}
	sort.Slice(rels, func(i, k int) bool { return rels[i].at < rels[k].at })
	free := s.free
	if free >= head.spec.ReqWorkers {
		return s.now
	}
	for _, r := range rels {
		free += r.n
		if free >= head.spec.ReqWorkers {
			return r.at
		}
	}
	return s.now + 365*24*time.Hour
}

// batchFor applies the simplified hybrid rule at the scheduler level: keep
// the job's configured total batch when the per-worker slice stays above
// the efficiency floor, otherwise grow the total batch (weak scaling) up to
// the configured per-worker batch.
func (s *sim) batchFor(j *simJob, workers int) int {
	if workers <= 0 {
		return j.spec.PerWorkerBatch
	}
	per := j.spec.TotalBatch() / workers
	if per < s.cfg.MinEfficientBatch {
		per = s.cfg.MinEfficientBatch
	}
	if per < 1 {
		per = 1
	}
	if per > j.spec.Model.MaxPerWorkerBatch {
		per = j.spec.Model.MaxPerWorkerBatch
	}
	if per > j.spec.PerWorkerBatch {
		per = j.spec.PerWorkerBatch
	}
	return per
}

// rate computes the job's progress rate at its current allocation.
func (s *sim) rate(j *simJob) float64 {
	if j.workers <= 0 {
		return 0
	}
	tp, err := s.cfg.Perf.Throughput(j.spec.Model, j.workers, j.perBatch)
	if err != nil {
		return 0
	}
	return tp
}

// reallocate runs the paper's allocation rule: every running job gets
// min_res, then GPUs go one at a time to the job with the highest marginal
// gain (throughput increase per added worker) until resources, max_res or
// positive gains are exhausted. reserve GPUs are withheld from the greedy
// phase so a pending admission can claim them. Changed jobs pay the
// system's adjustment pause.
func (s *sim) reallocate(running []*simJob, reserve int) {
	if len(running) == 0 {
		return
	}
	s.mReallocs.Inc()
	avail := s.free
	alloc := make(map[*simJob]int, len(running))
	for _, j := range running {
		if j.finished {
			continue
		}
		avail += j.workers
		alloc[j] = 0
	}
	avail -= reserve
	if avail < 0 {
		avail = 0
	}
	// Give everyone min_res.
	for j := range alloc {
		w := j.spec.MinWorkers
		if w > avail {
			w = avail
		}
		alloc[j] = w
		avail -= w
	}
	// Greedy marginal gain.
	tp := func(j *simJob, w int) float64 {
		if w <= 0 {
			return 0
		}
		v, err := s.cfg.Perf.Throughput(j.spec.Model, w, s.batchFor(j, w))
		if err != nil {
			return 0
		}
		return v
	}
	for avail > 0 {
		var best *simJob
		bestGain := 0.0
		for j, w := range alloc {
			if w >= j.spec.MaxWorkers {
				continue
			}
			gain := tp(j, w+1) - tp(j, w)
			if gain > bestGain {
				bestGain = gain
				best = j
			}
		}
		if best == nil {
			break
		}
		alloc[best]++
		avail--
	}
	// Apply changes, charging adjustment pauses.
	for j, w := range alloc {
		if w == j.workers || w == 0 {
			continue
		}
		kind := coord.ScaleOut
		if w < j.workers {
			kind = coord.ScaleIn
		}
		pause := s.cfg.System.Pause(kind, j.spec.Model, j.workers, w)
		s.free += j.workers - w
		j.workers = w
		j.perBatch = s.batchFor(j, w)
		j.rate = s.rate(j)
		j.pausedUntil = s.now + pause
		s.mAdjustments.Inc()
	}
}
