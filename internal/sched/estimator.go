package sched

import (
	"fmt"
	"math"
)

// ThroughputEstimator learns a job's throughput-vs-workers curve online
// from observed (workers, samples/sec) measurements, the way Optimus (whose
// marginal-gain rule the paper's allocation policy borrows) fits its
// performance model: in a real deployment the scheduler cannot query an
// oracle, it regresses one from what jobs report.
//
// The model is 1/throughput = a/N + b + c*N: an ideal-parallelism term, a
// fixed serial term, and a communication term growing with the worker
// count. Fit by least squares over the observations; Predict falls back to
// the nearest observation when the fit is under-determined.
type ThroughputEstimator struct {
	obsN  []float64
	obsTP []float64
	a, b  float64
	c     float64
	ready bool
}

// NewThroughputEstimator returns an empty estimator.
func NewThroughputEstimator() *ThroughputEstimator {
	return &ThroughputEstimator{}
}

// Observe records a measurement of samples/sec at n workers.
func (e *ThroughputEstimator) Observe(n int, throughput float64) error {
	if n <= 0 || throughput <= 0 {
		return fmt.Errorf("sched: invalid observation N=%d tp=%v", n, throughput)
	}
	e.obsN = append(e.obsN, float64(n))
	e.obsTP = append(e.obsTP, throughput)
	e.fit()
	return nil
}

// NumObservations reports how many samples the estimator has.
func (e *ThroughputEstimator) NumObservations() int { return len(e.obsN) }

// fit solves the 3-parameter least squares when at least 3 distinct worker
// counts were observed.
func (e *ThroughputEstimator) fit() {
	distinct := map[float64]bool{}
	for _, n := range e.obsN {
		distinct[n] = true
	}
	if len(distinct) < 3 {
		e.ready = false
		return
	}
	// Design matrix rows: [1/N, 1, N], target: 1/throughput.
	// Solve the 3x3 normal equations.
	var m [3][3]float64
	var v [3]float64
	for i := range e.obsN {
		n := e.obsN[i]
		y := 1 / e.obsTP[i]
		row := [3]float64{1 / n, 1, n}
		for r := 0; r < 3; r++ {
			for cIdx := 0; cIdx < 3; cIdx++ {
				m[r][cIdx] += row[r] * row[cIdx]
			}
			v[r] += row[r] * y
		}
	}
	sol, ok := solve3(m, v)
	if !ok {
		e.ready = false
		return
	}
	e.a, e.b, e.c = sol[0], sol[1], sol[2]
	// Reject unphysical fits (negative parallel term) — keep collecting.
	if e.a <= 0 {
		e.ready = false
		return
	}
	if e.c < 0 {
		e.c = 0
	}
	e.ready = true
}

// solve3 solves m*x = v by Gaussian elimination with partial pivoting.
func solve3(m [3][3]float64, v [3]float64) ([3]float64, bool) {
	var x [3]float64
	a := m
	b := v
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return x, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c2 := col; c2 < 3; c2++ {
				a[r][c2] -= f * a[col][c2]
			}
			b[r] -= f * b[col]
		}
	}
	for r := 2; r >= 0; r-- {
		sum := b[r]
		for c2 := r + 1; c2 < 3; c2++ {
			sum -= a[r][c2] * x[c2]
		}
		x[r] = sum / a[r][r]
	}
	return x, true
}

// Predict estimates throughput at n workers. With fewer than 3 distinct
// observations it returns the observation at the nearest worker count
// scaled linearly — a conservative fallback.
func (e *ThroughputEstimator) Predict(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sched: predict at N=%d", n)
	}
	if len(e.obsN) == 0 {
		return 0, fmt.Errorf("sched: no observations")
	}
	if !e.ready {
		// Nearest-observation linear extrapolation.
		best := 0
		for i := range e.obsN {
			if math.Abs(e.obsN[i]-float64(n)) < math.Abs(e.obsN[best]-float64(n)) {
				best = i
			}
		}
		return e.obsTP[best] * float64(n) / e.obsN[best], nil
	}
	inv := e.a/float64(n) + e.b + e.c*float64(n)
	if inv <= 0 {
		return 0, fmt.Errorf("sched: fit predicts non-positive iteration time at N=%d", n)
	}
	return 1 / inv, nil
}

// MarginalGain estimates the throughput gained by the (n+1)-th worker.
func (e *ThroughputEstimator) MarginalGain(n int) (float64, error) {
	cur, err := e.Predict(n)
	if err != nil {
		return 0, err
	}
	next, err := e.Predict(n + 1)
	if err != nil {
		return 0, err
	}
	return next - cur, nil
}
