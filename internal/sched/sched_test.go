package sched

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/elan-sys/elan/internal/coord"
	"github.com/elan-sys/elan/internal/models"
	"github.com/elan-sys/elan/internal/trace"
)

// smallTrace generates a quick trace for unit tests.
func smallTrace(t *testing.T, seed int64) []trace.Job {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.Span = 4 * time.Hour
	cfg.JobsPerDay = 180
	cfg.MeanServiceMinutes = 25
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return jobs
}

func runPolicy(t *testing.T, p Policy, sys System, jobs []trace.Job) *Result {
	t.Helper()
	cfg := DefaultConfig(p, sys)
	cfg.Tick = 2 * time.Second
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("Run(%v): %v", p, err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	jobs := smallTrace(t, 1)
	cfg := DefaultConfig(FIFO, IdealSystem{})
	cfg.GPUs = 0
	if _, err := Run(cfg, jobs); err == nil {
		t.Fatal("zero GPUs accepted")
	}
	cfg = DefaultConfig(FIFO, nil)
	if _, err := Run(cfg, jobs); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := Run(DefaultConfig(FIFO, IdealSystem{}), nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAllJobsComplete(t *testing.T) {
	jobs := smallTrace(t, 2)
	for _, p := range []Policy{FIFO, Backfill, ElasticFIFO, ElasticBackfill} {
		res := runPolicy(t, p, IdealSystem{}, jobs)
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%v: %d of %d jobs reported", p, len(res.Jobs), len(jobs))
		}
		for _, j := range res.Jobs {
			if j.Finish < j.Start || j.Start < j.Submit {
				t.Fatalf("%v: job %d has inconsistent times %+v", p, j.ID, j)
			}
			if j.Pending < 0 || j.JCT <= 0 {
				t.Fatalf("%v: job %d stats %+v", p, j.ID, j)
			}
		}
		if res.Makespan <= 0 {
			t.Fatalf("%v: makespan %v", p, res.Makespan)
		}
	}
}

func TestElasticReducesPendingAndJCT(t *testing.T) {
	// Figure 20's direction: the elastic variant improves JPT, JCT and
	// makespan over its static counterpart.
	jobs := smallTrace(t, 3)
	fifo := runPolicy(t, FIFO, IdealSystem{}, jobs)
	efifo := runPolicy(t, ElasticFIFO, IdealSystem{}, jobs)
	if efifo.MeanJPT >= fifo.MeanJPT {
		t.Errorf("E-FIFO JPT %v not better than FIFO %v", efifo.MeanJPT, fifo.MeanJPT)
	}
	if efifo.MeanJCT >= fifo.MeanJCT {
		t.Errorf("E-FIFO JCT %v not better than FIFO %v", efifo.MeanJCT, fifo.MeanJCT)
	}
	if efifo.Makespan > fifo.Makespan {
		t.Errorf("E-FIFO makespan %v worse than FIFO %v", efifo.Makespan, fifo.Makespan)
	}
	bf := runPolicy(t, Backfill, IdealSystem{}, jobs)
	ebf := runPolicy(t, ElasticBackfill, IdealSystem{}, jobs)
	if ebf.MeanJPT >= bf.MeanJPT {
		t.Errorf("E-BF JPT %v not better than BF %v", ebf.MeanJPT, bf.MeanJPT)
	}
	if ebf.MeanJCT >= bf.MeanJCT {
		t.Errorf("E-BF JCT %v not better than BF %v", ebf.MeanJCT, bf.MeanJCT)
	}
}

func TestBackfillNotWorseThanFIFOPending(t *testing.T) {
	jobs := smallTrace(t, 4)
	fifo := runPolicy(t, FIFO, IdealSystem{}, jobs)
	bf := runPolicy(t, Backfill, IdealSystem{}, jobs)
	// Backfill should not increase mean pending time materially.
	if bf.MeanJPT > fifo.MeanJPT+fifo.MeanJPT/10 {
		t.Fatalf("BF JPT %v much worse than FIFO %v", bf.MeanJPT, fifo.MeanJPT)
	}
}

func TestSystemOrderingElanNearIdealSRWorse(t *testing.T) {
	// Figure 22: Elan ~ Ideal; S&R visibly worse on JCT.
	jobs := smallTrace(t, 5)
	ideal := runPolicy(t, ElasticBackfill, IdealSystem{}, jobs)
	elan := runPolicy(t, ElasticBackfill, NewElanSystem(1), jobs)
	sr := runPolicy(t, ElasticBackfill, NewSRSystem(1), jobs)
	// Elan within a few percent of ideal.
	if ratio := float64(elan.MeanJCT) / float64(ideal.MeanJCT); ratio > 1.05 {
		t.Errorf("Elan JCT %.3fx of ideal, want <= 1.05x", ratio)
	}
	// S&R worse than Elan.
	if sr.MeanJCT <= elan.MeanJCT {
		t.Errorf("S&R JCT %v not worse than Elan %v", sr.MeanJCT, elan.MeanJCT)
	}
}

func TestUtilizationSeriesRecorded(t *testing.T) {
	jobs := smallTrace(t, 6)
	res := runPolicy(t, ElasticFIFO, IdealSystem{}, jobs)
	if len(res.UtilHours) != len(res.UtilVals) || len(res.UtilVals) == 0 {
		t.Fatalf("utilization series %d/%d", len(res.UtilHours), len(res.UtilVals))
	}
	for _, u := range res.UtilVals {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of range", u)
		}
	}
}

func TestElasticUtilizationHigher(t *testing.T) {
	jobs := smallTrace(t, 7)
	fifo := runPolicy(t, FIFO, IdealSystem{}, jobs)
	efifo := runPolicy(t, ElasticFIFO, IdealSystem{}, jobs)
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Elastic policies keep the cluster busier while work exists. Compare
	// over the busy prefix (the shorter makespan's span).
	n := len(fifo.UtilVals)
	if len(efifo.UtilVals) < n {
		n = len(efifo.UtilVals)
	}
	if mean(efifo.UtilVals[:n]) <= mean(fifo.UtilVals[:n]) {
		t.Errorf("elastic utilization %.3f not higher than static %.3f",
			mean(efifo.UtilVals[:n]), mean(fifo.UtilVals[:n]))
	}
}

func TestPercentileStats(t *testing.T) {
	jobs := smallTrace(t, 8)
	res := runPolicy(t, ElasticBackfill, IdealSystem{}, jobs)
	if res.P50JCT <= 0 || res.P90JCT < res.P50JCT {
		t.Fatalf("percentiles inconsistent: p50=%v p90=%v", res.P50JCT, res.P90JCT)
	}
	if res.P90JPT < 0 {
		t.Fatalf("P90JPT = %v", res.P90JPT)
	}
	// Mean lies between p50 and max for a right-skewed distribution; at
	// minimum it must not exceed p90 wildly. Just sanity-bound it.
	if res.MeanJCT > 10*res.P90JCT {
		t.Fatalf("mean JCT %v wildly above p90 %v", res.MeanJCT, res.P90JCT)
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{FIFO: "FIFO", Backfill: "BF", ElasticFIFO: "E-FIFO", ElasticBackfill: "E-BF"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%v.String() = %q", int(p), p.String())
		}
	}
	if FIFO.Elastic() || !ElasticFIFO.Elastic() {
		t.Fatal("Elastic() wrong")
	}
}

func TestSystemPauses(t *testing.T) {
	m := models.ResNet50()
	var ideal IdealSystem
	if ideal.Pause(coord.ScaleOut, m, 4, 8) != 0 || ideal.Overhead() != 0 {
		t.Fatal("ideal system not free")
	}
	elan := NewElanSystem(1)
	sr := NewSRSystem(1)
	ep := elan.Pause(coord.ScaleOut, m, 4, 8)
	sp := sr.Pause(coord.ScaleOut, m, 4, 8)
	if ep <= 0 || sp <= 0 {
		t.Fatal("non-positive pauses")
	}
	// Elan's scale-out pause is 10x+ cheaper than S&R's.
	if float64(sp)/float64(ep) < 10 {
		t.Fatalf("S&R/Elan pause ratio %.1f < 10", float64(sp)/float64(ep))
	}
	// Scale-in is cheaper than scale-out for Elan (no replication); the
	// per-sample jitter means we compare means over repeated draws.
	var inSum, outSum time.Duration
	for i := 0; i < 50; i++ {
		inSum += elan.Pause(coord.ScaleIn, m, 8, 4)
		outSum += elan.Pause(coord.ScaleOut, m, 4, 8)
	}
	if inSum >= outSum {
		t.Fatalf("Elan scale-in mean %v not cheaper than scale-out mean %v", inSum/50, outSum/50)
	}
	// S&R migration cheaper than S&R scale-out (start/init hidden).
	if sr.Pause(coord.Migrate, m, 8, 8) >= sp {
		t.Fatal("S&R migration not cheaper than scale-out")
	}
}

func TestTransientCapacityElastic(t *testing.T) {
	jobs := smallTrace(t, 9)
	// Capacity: full 128 GPUs, drops to 64 for one hour, recovers.
	capFn := func(now time.Duration) int {
		if now > time.Hour && now < 2*time.Hour {
			return 64
		}
		return 128
	}
	cfg := DefaultConfig(ElasticBackfill, IdealSystem{})
	cfg.Tick = 2 * time.Second
	cfg.CapacityFn = capFn
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("Run with transient capacity: %v", err)
	}
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("%d of %d jobs completed", len(res.Jobs), len(jobs))
	}
	// Compare against constant capacity: the reclaim must cost something
	// but not break completion.
	base := runPolicy(t, ElasticBackfill, IdealSystem{}, jobs)
	if res.MeanJCT < base.MeanJCT {
		t.Fatalf("transient capacity improved JCT?! %v < %v", res.MeanJCT, base.MeanJCT)
	}
}

func TestTransientCapacityRequiresElastic(t *testing.T) {
	jobs := smallTrace(t, 9)
	cfg := DefaultConfig(FIFO, IdealSystem{})
	cfg.CapacityFn = func(time.Duration) int { return 64 }
	if _, err := Run(cfg, jobs); err == nil {
		t.Fatal("static policy with transient capacity accepted")
	}
}

func TestTransientCapacityDeepReclaim(t *testing.T) {
	// Reclaim below the sum of min_res: the emergency shrink strips GPUs
	// from the largest jobs; everything still completes when capacity
	// returns.
	jobs := smallTrace(t, 10)
	capFn := func(now time.Duration) int {
		if now > 30*time.Minute && now < time.Hour {
			return 8
		}
		return 128
	}
	cfg := DefaultConfig(ElasticFIFO, IdealSystem{})
	cfg.Tick = 2 * time.Second
	cfg.CapacityFn = capFn
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("%d jobs completed", len(res.Jobs))
	}
}

func TestRandomTracesAllComplete(t *testing.T) {
	// Property: for random small traces and any policy, the simulation
	// terminates with every job completed, start >= submit and
	// finish > start, and JCT at least the ideal service time at max_res.
	prop := func(seed int64, policyRaw uint8) bool {
		cfg := trace.DefaultConfig()
		cfg.Seed = seed
		cfg.Span = 90 * time.Minute
		cfg.JobsPerDay = 300
		cfg.MeanServiceMinutes = 12
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return false
		}
		policies := []Policy{FIFO, Backfill, ElasticFIFO, ElasticBackfill}
		p := policies[int(policyRaw)%len(policies)]
		scfg := DefaultConfig(p, IdealSystem{})
		scfg.Tick = 2 * time.Second
		res, err := Run(scfg, jobs)
		if err != nil {
			return false
		}
		if len(res.Jobs) != len(jobs) {
			return false
		}
		for _, j := range res.Jobs {
			if j.Start < j.Submit || j.Finish <= j.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
