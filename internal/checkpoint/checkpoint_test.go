package checkpoint

import (
	"errors"
	"testing"
	"time"
)

func TestSaveTimeScalesWithSize(t *testing.T) {
	m := DefaultFSModel()
	small := m.SaveTime(100<<20, 1<<10)
	large := m.SaveTime(1<<30, 1<<10)
	if large <= small {
		t.Fatalf("save time not monotone: %v <= %v", large, small)
	}
	// Negative sizes treated as zero.
	if got := m.SaveTime(-1, -1); got != m.OpLatency {
		t.Fatalf("negative-size save = %v, want pure latency", got)
	}
}

func TestSaveTimeDominatedByFSWrite(t *testing.T) {
	// The paper's argument for IO-free replication: the FS write (plus the
	// D2H copy) dwarfs a P2P transfer. VGG-scale state: 1.14 GB.
	m := DefaultFSModel()
	gpu := int64(1144 << 20)
	save := m.SaveTime(gpu, 64<<10)
	// Write alone at 800 MB/s is ~1.5s.
	if save < time.Second {
		t.Fatalf("checkpoint save %v suspiciously fast", save)
	}
}

func TestLoadTimeReadersShareBandwidth(t *testing.T) {
	m := DefaultFSModel()
	one := m.LoadTime(1<<30, 0, 1)
	many := m.LoadTime(1<<30, 0, 8)
	if many <= one {
		t.Fatalf("8 readers (%v) not slower than 1 (%v)", many, one)
	}
	if got := m.LoadTime(1<<20, 0, 0); got <= 0 {
		t.Fatalf("nReaders=0 load = %v", got)
	}
}

type fakeState struct {
	Params  []float64
	Cursor  int
	Epoch   int
	LabelLR float64
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	in := fakeState{Params: []float64{1, 2, 3}, Cursor: 42, Epoch: 3, LabelLR: 0.1}
	size, err := s.Save("job1", in)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
	got, err := s.Size("job1")
	if err != nil || got != size {
		t.Fatalf("Size = %d, %v", got, err)
	}
	var out fakeState
	if err := s.Load("job1", &out); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Cursor != 42 || out.Epoch != 3 || len(out.Params) != 3 || out.Params[2] != 3 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestStoreMissing(t *testing.T) {
	s := NewStore()
	var out fakeState
	if err := s.Load("ghost", &out); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load missing = %v", err)
	}
	if _, err := s.Size("ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Size missing = %v", err)
	}
	s.Delete("ghost") // no-op must not panic
}

func TestStoreOverwrite(t *testing.T) {
	s := NewStore()
	if _, err := s.Save("k", fakeState{Cursor: 1}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := s.Save("k", fakeState{Cursor: 2}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var out fakeState
	if err := s.Load("k", &out); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Cursor != 2 {
		t.Fatalf("Cursor = %d, want 2", out.Cursor)
	}
	s.Delete("k")
	if err := s.Load("k", &out); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("checkpoint survived delete")
	}
}

func TestStoreSaveUnencodable(t *testing.T) {
	s := NewStore()
	if _, err := s.Save("bad", func() {}); err == nil {
		t.Fatal("function value encoded")
	}
}
