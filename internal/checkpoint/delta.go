package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/elan-sys/elan/internal/telemetry"
)

// Delta checkpointing (DESIGN §13): instead of serializing the full model
// as one blob per save, the state vector is split into fixed-size chunks
// (parameter ranges), each identified by a content hash. A save stores
// only the chunks whose hash changed since the previous save and commits a
// manifest — the chunk list plus a pointer to the previous manifest — so
// the chain from any manifest back to the last full snapshot reconstructs
// the exact state. The manifest write is the commit point: a crash after
// some chunk writes but before the manifest leaves the previous chain
// fully intact (the stranded chunks are garbage, collected at the next
// compaction), so recovery is always bit-identical to the last committed
// save. Every CompactEvery-th save is written full, which bounds chain
// length and lets compaction drop unreachable manifests and chunks.

// Errors returned by the delta store.
var (
	// ErrCrashInjected reports a fault-injection crash between chunk
	// writes and the manifest commit (chaos harness hook).
	ErrCrashInjected = errors.New("checkpoint: injected crash before manifest commit")
	// ErrStateSize reports a warm restore against a state buffer whose
	// length does not match the checkpointed model.
	ErrStateSize = errors.New("checkpoint: state length mismatch")
)

// Delta store defaults.
const (
	// DefaultChunkElems is 4096 float64s per chunk (32 KiB): small enough
	// that a handful of touched parameters dirties a handful of chunks,
	// large enough that manifests stay tiny relative to payload.
	DefaultChunkElems = 4096
	// DefaultCompactEvery writes a full manifest (and compacts) every 8th
	// save, bounding restore chains to 8 manifests.
	DefaultCompactEvery = 8
)

// ChunkRef names one chunk of a manifest: its position in the state vector
// and the content hash under which its payload is stored.
type ChunkRef struct {
	Index int
	Hash  uint64
}

// Manifest is one committed save. Full manifests carry a ref for every
// chunk; delta manifests carry only the dirty ones and chain to the
// previous manifest via Base.
type Manifest struct {
	Seq      int64
	Base     int64 // previous manifest's Seq (0 for a full manifest)
	Full     bool
	NumElems int
	Header   []byte
	Chunks   []ChunkRef
}

// SaveStats describes one Save.
type SaveStats struct {
	Seq           int64
	Full          bool
	Compacted     bool
	ChunksTotal   int
	ChunksDirty   int   // refs recorded in the manifest beyond the clean set
	ChunksWritten int   // payloads newly stored (dirty minus content-dedup hits)
	BytesWritten  int64 // payload bytes newly stored
	BytesSkipped  int64 // payload bytes avoided vs a full-blob save
}

// RestoreStats describes one Restore/RestoreFrom.
type RestoreStats struct {
	Seq            int64
	ChainLen       int // manifests walked
	ChunksReplayed int // chunk payloads decoded
	Bytes          int64
}

// DeltaConfig configures a DeltaStore. Zero values take the defaults
// above; Metrics may be nil.
type DeltaConfig struct {
	ChunkElems   int
	CompactEvery int
	Metrics      *telemetry.Registry
}

// chain is the per-name checkpoint lineage.
type chain struct {
	manifests []Manifest // [0] is full; later entries are deltas
	hashes    []uint64   // current per-chunk content hash (dirty detection)
	numElems  int
	sinceFull int // delta saves since manifests[0]
}

// DeltaStore is an in-memory content-addressed chunk store with manifest
// chains, standing in for files on the shared FS exactly like Store does
// for full blobs.
type DeltaStore struct {
	mu     sync.Mutex
	cfg    DeltaConfig
	chunks map[uint64][]byte // content hash → encoded payload
	jobs   map[string]*chain
	seq    int64

	// crashAfter < 0 is disarmed; otherwise the next Save fails after
	// that many chunk-payload writes, before committing its manifest.
	crashAfter int

	mSaves     *telemetry.Counter
	mFullSaves *telemetry.Counter
	mCompact   *telemetry.Counter
	mBytesOut  *telemetry.Counter
	mBytesSkip *telemetry.Counter
	mChunksOut *telemetry.Counter
	mRestores  *telemetry.Counter
	mReplayed  *telemetry.Counter
}

// NewDeltaStore creates an empty delta checkpoint store.
func NewDeltaStore(cfg DeltaConfig) *DeltaStore {
	if cfg.ChunkElems <= 0 {
		cfg.ChunkElems = DefaultChunkElems
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	d := &DeltaStore{
		cfg:        cfg,
		chunks:     make(map[uint64][]byte),
		jobs:       make(map[string]*chain),
		crashAfter: -1,
	}
	reg := cfg.Metrics
	d.mSaves = reg.Counter("checkpoint_saves_total")
	d.mFullSaves = reg.Counter("checkpoint_full_saves_total")
	d.mCompact = reg.Counter("checkpoint_compactions_total")
	d.mBytesOut = reg.Counter("checkpoint_bytes_written_total")
	d.mBytesSkip = reg.Counter("checkpoint_bytes_skipped_total")
	d.mChunksOut = reg.Counter("checkpoint_chunks_written_total")
	d.mRestores = reg.Counter("checkpoint_restores_total")
	d.mReplayed = reg.Counter("checkpoint_restore_chunks_total")
	return d
}

// hashChunk folds the chunk's float64 bit patterns through a word-wide
// FNV-1a variant (xor the full word, then multiply by the 64-bit FNV
// prime). Not cryptographic — it detects drift between training steps,
// not adversaries.
//
//elan:hotpath
func hashChunk(vals []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

// chunkBounds returns the [lo, hi) element range of chunk i.
func (d *DeltaStore) chunkBounds(i, numElems int) (int, int) {
	lo := i * d.cfg.ChunkElems
	hi := lo + d.cfg.ChunkElems
	if hi > numElems {
		hi = numElems
	}
	return lo, hi
}

func (d *DeltaStore) numChunks(numElems int) int {
	return (numElems + d.cfg.ChunkElems - 1) / d.cfg.ChunkElems
}

func encodeChunk(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decodeChunk(b []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// InjectCrash arms a one-shot fault: the next Save fails with
// ErrCrashInjected after afterChunks chunk-payload writes, before its
// manifest commits — the chaos harness's crash-mid-save probe.
func (d *DeltaStore) InjectCrash(afterChunks int) {
	d.mu.Lock()
	d.crashAfter = afterChunks
	d.mu.Unlock()
}

// Save checkpoints state (with its opaque header, typically the gob of the
// runtime fields) under name, storing only chunks whose content changed
// since the last committed save. The first save of a name, a save after
// the model size changed, and every CompactEvery-th save are full; full
// saves also compact the store.
func (d *DeltaStore) Save(name string, header []byte, state []float64) (SaveStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	c := d.jobs[name]
	full := c == nil || c.numElems != len(state) || c.sinceFull >= d.cfg.CompactEvery-1
	n := d.numChunks(len(state))

	hashes := make([]uint64, n)
	for i := range hashes {
		lo, hi := d.chunkBounds(i, len(state))
		hashes[i] = hashChunk(state[lo:hi])
	}

	var stats SaveStats
	stats.Full = full
	stats.ChunksTotal = n
	refs := make([]ChunkRef, 0, n)
	writes := 0
	for i := 0; i < n; i++ {
		dirty := full || hashes[i] != c.hashes[i]
		lo, hi := d.chunkBounds(i, len(state))
		size := int64(8 * (hi - lo))
		if !dirty {
			stats.BytesSkipped += size
			continue
		}
		refs = append(refs, ChunkRef{Index: i, Hash: hashes[i]})
		stats.ChunksDirty++
		if _, ok := d.chunks[hashes[i]]; ok {
			// Content-addressed dedup: the payload is already stored
			// (e.g. a chunk reverted to an earlier value).
			stats.BytesSkipped += size
			continue
		}
		if d.crashAfter >= 0 && writes >= d.crashAfter {
			// Simulated process death: some chunks landed, no manifest.
			// The previous chain is untouched; the stranded payloads are
			// garbage until the next compaction.
			d.crashAfter = -1
			return stats, fmt.Errorf("%w: %q after %d chunk writes", ErrCrashInjected, name, writes)
		}
		d.chunks[hashes[i]] = encodeChunk(state[lo:hi])
		writes++
		stats.ChunksWritten++
		stats.BytesWritten += size
	}

	// Commit point: the manifest enters the chain only after every chunk
	// it references is stored.
	d.seq++
	m := Manifest{
		Seq:      d.seq,
		Full:     full,
		NumElems: len(state),
		Header:   append([]byte(nil), header...),
		Chunks:   refs,
	}
	if full {
		d.jobs[name] = &chain{manifests: []Manifest{m}, hashes: hashes, numElems: len(state)}
		stats.Compacted = d.compactLocked()
		d.mFullSaves.Inc()
		if stats.Compacted {
			d.mCompact.Inc()
		}
	} else {
		m.Base = c.manifests[len(c.manifests)-1].Seq
		c.manifests = append(c.manifests, m)
		c.hashes = hashes
		c.sinceFull++
	}
	stats.Seq = m.Seq

	d.mSaves.Inc()
	d.mBytesOut.Add(stats.BytesWritten)
	d.mBytesSkip.Add(stats.BytesSkipped)
	d.mChunksOut.Add(int64(stats.ChunksWritten))
	return stats, nil
}

// compactLocked drops every chunk payload not referenced by a live
// manifest of any name. Called after a full save replaces a chain, which
// is when references actually go away. Returns whether anything was
// collected.
func (d *DeltaStore) compactLocked() bool {
	live := make(map[uint64]bool, len(d.chunks))
	for _, c := range d.jobs {
		for _, m := range c.manifests {
			for _, ref := range m.Chunks {
				live[ref.Hash] = true
			}
		}
	}
	collected := false
	for h := range d.chunks {
		if !live[h] {
			delete(d.chunks, h)
			collected = true
		}
	}
	return collected
}

// resolve builds the newest chunk ref per index across the manifests
// after seq position from (exclusive, by chain index), walking oldest to
// newest so later saves win.
func resolveRefs(manifests []Manifest, n int) []ChunkRef {
	refs := make([]ChunkRef, n)
	for i := range refs {
		refs[i].Index = -1
	}
	for _, m := range manifests {
		for _, ref := range m.Chunks {
			refs[ref.Index] = ref
		}
	}
	return refs
}

// Restore rebuilds the latest committed state of name from its manifest
// chain: the last full snapshot plus every delta after it, newest chunk
// winning per index.
func (d *DeltaStore) Restore(name string) ([]byte, []float64, RestoreStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.jobs[name]
	if !ok {
		return nil, nil, RestoreStats{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	last := c.manifests[len(c.manifests)-1]
	state := make([]float64, last.NumElems)
	stats := RestoreStats{Seq: last.Seq, ChainLen: len(c.manifests)}
	if err := d.applyLocked(c.manifests, state, &stats); err != nil {
		return nil, nil, RestoreStats{}, err
	}
	d.mRestores.Inc()
	d.mReplayed.Add(int64(stats.ChunksReplayed))
	return append([]byte(nil), last.Header...), state, stats, nil
}

// RestoreFrom is the warm-restart path: the caller already holds the
// state exactly as committed at manifest haveSeq (a restarted AM reusing
// host memory, a rejoining worker with a stale replica) and only the
// chunks that changed since then are decoded into it. If haveSeq is no
// longer in the chain — compacted away, or from a different lineage — the
// full chain is replayed instead.
func (d *DeltaStore) RestoreFrom(name string, state []float64, haveSeq int64) ([]byte, RestoreStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.jobs[name]
	if !ok {
		return nil, RestoreStats{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	last := c.manifests[len(c.manifests)-1]
	if len(state) != last.NumElems {
		return nil, RestoreStats{}, fmt.Errorf("%w: have %d elems, checkpoint %q has %d",
			ErrStateSize, len(state), name, last.NumElems)
	}
	from := 0 // full replay unless haveSeq is found in the chain
	for i, m := range c.manifests {
		if m.Seq == haveSeq {
			from = i + 1
			break
		}
	}
	stats := RestoreStats{Seq: last.Seq, ChainLen: len(c.manifests) - from}
	if err := d.applyLocked(c.manifests[from:], state, &stats); err != nil {
		return nil, RestoreStats{}, err
	}
	d.mRestores.Inc()
	d.mReplayed.Add(int64(stats.ChunksReplayed))
	return append([]byte(nil), last.Header...), stats, nil
}

// applyLocked decodes the newest version of every chunk referenced by
// manifests into state.
func (d *DeltaStore) applyLocked(manifests []Manifest, state []float64, stats *RestoreStats) error {
	if len(manifests) == 0 {
		return nil
	}
	n := d.numChunks(len(state))
	for _, ref := range resolveRefs(manifests, n) {
		if ref.Index < 0 {
			continue // untouched by this span of the chain
		}
		payload, ok := d.chunks[ref.Hash]
		if !ok {
			return fmt.Errorf("checkpoint: chunk %d (hash %x) missing from store", ref.Index, ref.Hash)
		}
		lo, hi := d.chunkBounds(ref.Index, len(state))
		decodeChunk(payload, state[lo:hi])
		stats.ChunksReplayed++
		stats.Bytes += int64(len(payload))
	}
	return nil
}

// LastSeq returns the newest committed manifest seq for name.
func (d *DeltaStore) LastSeq(name string) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.jobs[name]
	if !ok {
		return 0, false
	}
	return c.manifests[len(c.manifests)-1].Seq, true
}

// Chain returns a copy of name's manifest chain (for tests and
// inspection).
func (d *DeltaStore) Chain(name string) []Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.jobs[name]
	if !ok {
		return nil
	}
	return append([]Manifest(nil), c.manifests...)
}

// ChunkCount returns how many chunk payloads the store currently holds
// (for compaction tests).
func (d *DeltaStore) ChunkCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chunks)
}
