package checkpoint

import (
	"errors"
	"testing"

	"github.com/elan-sys/elan/internal/racecheck"
	"github.com/elan-sys/elan/internal/telemetry"
)

func ramp(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

func TestDeltaSaveRestoreRoundTrip(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64})
	state := ramp(1000, 0) // 16 chunks, last one partial
	st, err := d.Save("job", []byte("hdr1"), state)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.ChunksWritten != 16 || st.BytesWritten != 8000 {
		t.Fatalf("first save stats = %+v", st)
	}
	hdr, got, rs, err := d.Restore("job")
	if err != nil || string(hdr) != "hdr1" {
		t.Fatalf("restore: %q, %v", hdr, err)
	}
	if len(got) != len(state) {
		t.Fatalf("restored %d elems", len(got))
	}
	for i := range got {
		if got[i] != state[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], state[i])
		}
	}
	if rs.ChainLen != 1 || rs.ChunksReplayed != 16 {
		t.Fatalf("restore stats = %+v", rs)
	}
}

func TestDeltaSaveWritesOnlyDirtyChunks(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 100})
	state := ramp(64*16, 0)
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	// Touch two elements in distinct chunks.
	state[10] += 0.5
	state[64*9+3] -= 1.25
	st, err := d.Save("job", []byte("h2"), state)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full || st.ChunksDirty != 2 || st.ChunksWritten != 2 {
		t.Fatalf("delta stats = %+v", st)
	}
	if st.BytesWritten != 2*64*8 || st.BytesSkipped != 14*64*8 {
		t.Fatalf("byte accounting = %+v", st)
	}
	_, got, rs, err := d.Restore("job")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != state[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], state[i])
		}
	}
	// Cold restore still decodes every chunk, via the chain.
	if rs.ChainLen != 2 || rs.ChunksReplayed != 16 {
		t.Fatalf("restore stats = %+v", rs)
	}
}

func TestDeltaContentDedup(t *testing.T) {
	// A chunk reverting to a previously stored content re-references the
	// payload instead of rewriting it.
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 100})
	state := ramp(128, 0)
	orig := state[5]
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	state[5] = 99
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	state[5] = orig // back to the first save's content
	st, err := d.Save("job", nil, state)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksDirty != 1 || st.ChunksWritten != 0 || st.BytesWritten != 0 {
		t.Fatalf("dedup stats = %+v", st)
	}
}

func TestDeltaWarmRestoreFrom(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 100})
	state := ramp(64*64, 0) // 64 chunks
	s1, err := d.Save("job", nil, state)
	if err != nil {
		t.Fatal(err)
	}
	// Caller keeps the state as of s1 warm in memory.
	warm := append([]float64(nil), state...)
	// Two more saves touching one chunk each.
	state[0] = -1
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	state[64*33] = -2
	if _, err := d.Save("job", []byte("h3"), state); err != nil {
		t.Fatal(err)
	}
	hdr, rs, err := d.RestoreFrom("job", warm, s1.Seq)
	if err != nil || string(hdr) != "h3" {
		t.Fatalf("RestoreFrom: %q, %v", hdr, err)
	}
	// Only the two dirty chunks are replayed — recovery work scales with
	// the delta, not the model.
	if rs.ChunksReplayed != 2 || rs.ChainLen != 2 {
		t.Fatalf("warm restore stats = %+v", rs)
	}
	for i := range warm {
		if warm[i] != state[i] {
			t.Fatalf("elem %d: %v != %v", i, warm[i], state[i])
		}
	}
	// A seq not in the chain falls back to a full replay.
	cold := make([]float64, len(state))
	_, rs2, err := d.RestoreFrom("job", cold, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.ChunksReplayed != 64 {
		t.Fatalf("fallback replayed %d chunks, want 64", rs2.ChunksReplayed)
	}
	// A wrong-size buffer is rejected.
	if _, _, err := d.RestoreFrom("job", make([]float64, 3), s1.Seq); !errors.Is(err, ErrStateSize) {
		t.Fatalf("size mismatch = %v", err)
	}
}

func TestDeltaCompaction(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 4})
	state := ramp(64*8, 0) // 8 chunks
	for i := 0; i < 4; i++ {
		state[0] = float64(i)
		if _, err := d.Save("job", nil, state); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.Chain("job")); got != 4 {
		t.Fatalf("chain length = %d, want 4 (full + 3 deltas)", got)
	}
	// The 5th save rolls a new full manifest (period CompactEvery) and
	// compacts: only the 8 live chunks remain.
	state[0] = 42
	st, err := d.Save("job", nil, state)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || !st.Compacted {
		t.Fatalf("5th save stats = %+v", st)
	}
	if got := len(d.Chain("job")); got != 1 {
		t.Fatalf("chain length after compaction = %d, want 1", got)
	}
	if got := d.ChunkCount(); got != 8 {
		t.Fatalf("chunk count after compaction = %d, want 8", got)
	}
	_, got, _, err := d.Restore("job")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != state[i] {
			t.Fatalf("elem %d after compaction: %v != %v", i, got[i], state[i])
		}
	}
}

func TestDeltaCrashMidSaveRecoversLastCommit(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 100})
	state := ramp(64*16, 0)
	if _, err := d.Save("job", []byte("h1"), state); err != nil {
		t.Fatal(err)
	}
	committed := append([]float64(nil), state...)

	// Dirty four chunks, crash after two payload writes.
	for _, i := range []int{0, 64 * 4, 64 * 9, 64 * 15} {
		state[i] = -7
	}
	d.InjectCrash(2)
	if _, err := d.Save("job", []byte("h2"), state); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("crash save = %v", err)
	}

	// Recovery sees the previous commit, bit-identical.
	hdr, got, _, err := d.Restore("job")
	if err != nil || string(hdr) != "h1" {
		t.Fatalf("post-crash restore: %q, %v", hdr, err)
	}
	for i := range got {
		if got[i] != committed[i] {
			t.Fatalf("elem %d corrupted by crashed save: %v != %v", i, got[i], committed[i])
		}
	}

	// The retried save commits normally and dirty detection still works
	// (hashes were not advanced by the failed attempt).
	st, err := d.Save("job", []byte("h2"), state)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksDirty != 4 {
		t.Fatalf("retry dirty chunks = %d, want 4", st.ChunksDirty)
	}
	hdr, got, _, err = d.Restore("job")
	if err != nil || string(hdr) != "h2" {
		t.Fatalf("post-retry restore: %q, %v", hdr, err)
	}
	for i := range got {
		if got[i] != state[i] {
			t.Fatalf("elem %d after retry: %v != %v", i, got[i], state[i])
		}
	}
}

func TestDeltaModelResizeForcesFull(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64})
	if _, err := d.Save("job", nil, ramp(128, 0)); err != nil {
		t.Fatal(err)
	}
	st, err := d.Save("job", nil, ramp(256, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatalf("resized save not full: %+v", st)
	}
	_, got, _, err := d.Restore("job")
	if err != nil || len(got) != 256 {
		t.Fatalf("restore after resize: %d elems, %v", len(got), err)
	}
}

func TestDeltaTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := NewDeltaStore(DeltaConfig{ChunkElems: 64, CompactEvery: 100, Metrics: reg})
	state := ramp(64*4, 0)
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	state[0] = 1e9
	if _, err := d.Save("job", nil, state); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.Restore("job"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("checkpoint_saves_total").Value(); got != 2 {
		t.Errorf("saves = %d", got)
	}
	if got := reg.Counter("checkpoint_chunks_written_total").Value(); got != 5 {
		t.Errorf("chunks written = %d, want 5 (4 full + 1 delta)", got)
	}
	if got := reg.Counter("checkpoint_bytes_skipped_total").Value(); got != 3*64*8 {
		t.Errorf("bytes skipped = %d", got)
	}
	if got := reg.Counter("checkpoint_restore_chunks_total").Value(); got != 4 {
		t.Errorf("restore chunks = %d", got)
	}
}

func TestDeltaMissingName(t *testing.T) {
	d := NewDeltaStore(DeltaConfig{})
	if _, _, _, err := d.Restore("nope"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore missing = %v", err)
	}
	if _, _, err := d.RestoreFrom("nope", nil, 0); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("RestoreFrom missing = %v", err)
	}
	if _, ok := d.LastSeq("nope"); ok {
		t.Fatal("LastSeq on missing name")
	}
}

// TestChunkHashZeroAllocs pins the dirty-detection scan: hashing a chunk
// is pure arithmetic over the float bits.
func TestChunkHashZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	vals := ramp(4096, 0)
	var sink uint64
	if avg := testing.AllocsPerRun(1000, func() {
		sink = hashChunk(vals)
	}); avg != 0 {
		t.Fatalf("%v allocs per chunk hash, want 0", avg)
	}
	_ = sink
}
