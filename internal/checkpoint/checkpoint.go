// Package checkpoint models the checkpoint path that the Shutdown-&-Restart
// baseline uses to replicate training state (Section V-B, Figures 10/11):
// GPU state is first copied device-to-host over PCIe, then serialized and
// written to a shared filesystem (the paper's Lustre), and restored by the
// inverse path. The package provides both the cost model (simulated
// durations) and a real in-memory file store with gob serialization used by
// the integration tests, so the code path exercised is the same shape as
// the production one: copy, serialize, write, read, deserialize, copy back.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNoCheckpoint is returned when loading a checkpoint that was never saved.
var ErrNoCheckpoint = errors.New("checkpoint: not found")

// FSModel is the shared-filesystem cost model.
type FSModel struct {
	// WriteBytesPerSec is the aggregate write bandwidth.
	WriteBytesPerSec float64
	// ReadBytesPerSec is the aggregate read bandwidth.
	ReadBytesPerSec float64
	// OpLatency is the fixed metadata cost per save or load.
	OpLatency time.Duration
	// PCIeBytesPerSec is the host<->device copy bandwidth (the CPU-GPU
	// memory copy the paper's IO-free mechanism avoids).
	PCIeBytesPerSec float64
}

// DefaultFSModel approximates a busy Lustre deployment plus PCIe gen3 D2H.
func DefaultFSModel() FSModel {
	return FSModel{
		WriteBytesPerSec: 800e6,
		ReadBytesPerSec:  1.2e9,
		OpLatency:        120 * time.Millisecond,
		PCIeBytesPerSec:  6e9,
	}
}

// SaveTime returns the simulated time to checkpoint gpuBytes of device state
// and cpuBytes of host state: D2H copy of the GPU part, then an FS write of
// everything.
func (m FSModel) SaveTime(gpuBytes, cpuBytes int64) time.Duration {
	if gpuBytes < 0 {
		gpuBytes = 0
	}
	if cpuBytes < 0 {
		cpuBytes = 0
	}
	d2h := time.Duration(float64(gpuBytes) / m.PCIeBytesPerSec * float64(time.Second))
	write := time.Duration(float64(gpuBytes+cpuBytes) / m.WriteBytesPerSec * float64(time.Second))
	return m.OpLatency + d2h + write
}

// LoadTime returns the simulated time to restore a checkpoint: FS read of
// everything, then H2D copy of the GPU part. nReaders > 1 models restart
// workers loading the same checkpoint concurrently and splitting read
// bandwidth.
func (m FSModel) LoadTime(gpuBytes, cpuBytes int64, nReaders int) time.Duration {
	if gpuBytes < 0 {
		gpuBytes = 0
	}
	if cpuBytes < 0 {
		cpuBytes = 0
	}
	if nReaders < 1 {
		nReaders = 1
	}
	perReader := m.ReadBytesPerSec / float64(nReaders)
	read := time.Duration(float64(gpuBytes+cpuBytes) / perReader * float64(time.Second))
	h2d := time.Duration(float64(gpuBytes) / m.PCIeBytesPerSec * float64(time.Second))
	return m.OpLatency + read + h2d
}

// Store is a real in-memory checkpoint store with gob serialization,
// standing in for files on the shared FS.
type Store struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewStore creates an empty checkpoint store.
func NewStore() *Store {
	return &Store{blobs: make(map[string][]byte)}
}

// Save serializes state under name and returns the serialized size.
func (s *Store) Save(name string, state any) (int64, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return 0, fmt.Errorf("checkpoint: encode %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	blob := make([]byte, buf.Len())
	copy(blob, buf.Bytes())
	s.blobs[name] = blob
	return int64(len(blob)), nil
}

// Load deserializes the checkpoint saved under name into state (a pointer).
func (s *Store) Load(name string, state any) error {
	s.mu.Lock()
	blob, ok := s.blobs[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(state); err != nil {
		return fmt.Errorf("checkpoint: decode %q: %w", name, err)
	}
	return nil
}

// Size returns the stored size of a checkpoint, or an error if absent.
func (s *Store) Size(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoCheckpoint, name)
	}
	return int64(len(blob)), nil
}

// Delete removes a checkpoint; deleting a missing one is a no-op.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, name)
}
