// Package topology models the hardware of a GPU training cluster: the
// node / socket / PCIe-switch / GPU tree, the four link levels between any
// two GPUs that the paper identifies (Section IV), the three transports
// (P2P, SHM, NET) with their bandwidth curves (Figure 8), and the contention
// domains that force replications sharing a physical link to serialize.
//
// The default geometry mirrors the paper's testbed: servers with two CPU
// sockets, two PCIe switches per socket and two GPUs per switch (8 GPUs per
// node), connected by a 56 Gbps InfiniBand network.
package topology

import (
	"fmt"
	"sort"
	"time"
)

// LinkLevel classifies the path between two GPUs, following Section IV of
// the paper. Lower is closer (higher bandwidth).
type LinkLevel int

const (
	// L1 traverses only PCIe switches (same switch): P2P capable.
	L1 LinkLevel = iota + 1
	// L2 traverses a PCIe host bridge (same socket, different switch).
	L2
	// L3 traverses a socket-level link such as QPI (same node, different
	// socket).
	L3
	// L4 traverses the network (different nodes).
	L4
)

// String returns the paper's name for the level.
func (l LinkLevel) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case L4:
		return "L4"
	default:
		return fmt.Sprintf("LinkLevel(%d)", int(l))
	}
}

// Transport is the communication mechanism available on a link level.
type Transport int

const (
	// P2P is GPU peer-to-peer memory access, available only on L1.
	P2P Transport = iota + 1
	// SHM bridges through CPU shared memory, used on L2 and L3.
	SHM
	// NET crosses the network (InfiniBand with RDMA), the only way on L4.
	NET
)

// String names the transport as in Figure 8.
func (t Transport) String() string {
	switch t {
	case P2P:
		return "P2P"
	case SHM:
		return "SHM"
	case NET:
		return "NET"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// TransportFor returns the best transport usable on a link level, following
// the paper: P2P only on L1; SHM on L2 and L3; NET on L4.
func TransportFor(level LinkLevel) Transport {
	switch level {
	case L1:
		return P2P
	case L2, L3:
		return SHM
	default:
		return NET
	}
}

// LinkSpec holds the alpha-beta cost parameters of a transport: a fixed
// per-transfer latency and a peak bandwidth. Effective bandwidth grows with
// message size and saturates at Peak, reproducing the shape of Figure 8.
type LinkSpec struct {
	Latency time.Duration
	// PeakBytesPerSec is the asymptotic bandwidth for large messages.
	PeakBytesPerSec float64
}

// DefaultLinkSpecs returns calibration for a PCIe-gen3 + 56 Gbps IB cluster
// of the paper's era. The ordering P2P > SHM > NET matches Figure 8.
func DefaultLinkSpecs() map[Transport]LinkSpec {
	return map[Transport]LinkSpec{
		P2P: {Latency: 10 * time.Microsecond, PeakBytesPerSec: 12e9},
		SHM: {Latency: 25 * time.Microsecond, PeakBytesPerSec: 7e9},
		NET: {Latency: 50 * time.Microsecond, PeakBytesPerSec: 4.5e9},
	}
}

// GPUID uniquely identifies a GPU in a cluster.
type GPUID struct {
	Node   int
	Socket int
	Switch int
	Index  int
}

// String renders the ID as "nN.sS.pP.gG".
func (id GPUID) String() string {
	return fmt.Sprintf("n%d.s%d.p%d.g%d", id.Node, id.Socket, id.Switch, id.Index)
}

// less provides a total order for deterministic tie-breaking.
func (id GPUID) less(other GPUID) bool {
	if id.Node != other.Node {
		return id.Node < other.Node
	}
	if id.Socket != other.Socket {
		return id.Socket < other.Socket
	}
	if id.Switch != other.Switch {
		return id.Switch < other.Switch
	}
	return id.Index < other.Index
}

// GPU is a single accelerator in the cluster tree.
type GPU struct {
	ID GPUID
	// MemoryBytes is the device memory capacity (11 GB for a 1080Ti).
	MemoryBytes int64
	// reserved marks the GPU as allocated to a job.
	reserved bool
}

// Geometry describes the regular shape of a cluster.
type Geometry struct {
	Nodes            int
	SocketsPerNode   int
	SwitchesPerSock  int
	GPUsPerSwitch    int
	GPUMemoryBytes   int64
	LinkSpecs        map[Transport]LinkSpec
	NetworkBisection float64 // aggregate network bytes/sec; 0 = unlimited
}

// DefaultGeometry matches the paper's testbed: 8 nodes x 2 sockets x
// 2 switches x 2 GPUs = 64 GPUs, 11 GB per GPU.
func DefaultGeometry() Geometry {
	return Geometry{
		Nodes:           8,
		SocketsPerNode:  2,
		SwitchesPerSock: 2,
		GPUsPerSwitch:   2,
		GPUMemoryBytes:  11 << 30,
		LinkSpecs:       DefaultLinkSpecs(),
	}
}

// Cluster is the hardware tree plus allocation state.
type Cluster struct {
	geom Geometry
	gpus []*GPU
	byID map[GPUID]*GPU
}

// NewCluster materializes a cluster from a geometry. It validates that all
// dimensions are positive and that link specs are present.
func NewCluster(geom Geometry) (*Cluster, error) {
	if geom.Nodes <= 0 || geom.SocketsPerNode <= 0 || geom.SwitchesPerSock <= 0 || geom.GPUsPerSwitch <= 0 {
		return nil, fmt.Errorf("topology: non-positive geometry %+v", geom)
	}
	if geom.LinkSpecs == nil {
		geom.LinkSpecs = DefaultLinkSpecs()
	}
	for _, tr := range []Transport{P2P, SHM, NET} {
		if _, ok := geom.LinkSpecs[tr]; !ok {
			return nil, fmt.Errorf("topology: missing link spec for %v", tr)
		}
	}
	if geom.GPUMemoryBytes <= 0 {
		geom.GPUMemoryBytes = 11 << 30
	}
	c := &Cluster{geom: geom, byID: make(map[GPUID]*GPU)}
	for n := 0; n < geom.Nodes; n++ {
		for s := 0; s < geom.SocketsPerNode; s++ {
			for p := 0; p < geom.SwitchesPerSock; p++ {
				for g := 0; g < geom.GPUsPerSwitch; g++ {
					gpu := &GPU{
						ID:          GPUID{Node: n, Socket: s, Switch: p, Index: g},
						MemoryBytes: geom.GPUMemoryBytes,
					}
					c.gpus = append(c.gpus, gpu)
					c.byID[gpu.ID] = gpu
				}
			}
		}
	}
	return c, nil
}

// Geometry returns the cluster's geometry.
func (c *Cluster) Geometry() Geometry { return c.geom }

// NumGPUs returns the total GPU count.
func (c *Cluster) NumGPUs() int { return len(c.gpus) }

// GPUsPerNode returns the per-node GPU count.
func (c *Cluster) GPUsPerNode() int {
	return c.geom.SocketsPerNode * c.geom.SwitchesPerSock * c.geom.GPUsPerSwitch
}

// GPU looks up a GPU by ID.
func (c *Cluster) GPU(id GPUID) (*GPU, bool) {
	g, ok := c.byID[id]
	return g, ok
}

// AllGPUs returns all GPUs in deterministic tree order. The slice is a copy;
// the GPUs themselves are shared.
func (c *Cluster) AllGPUs() []*GPU {
	out := make([]*GPU, len(c.gpus))
	copy(out, c.gpus)
	return out
}

// FreeGPUs returns unreserved GPUs in tree order.
func (c *Cluster) FreeGPUs() []*GPU {
	var out []*GPU
	for _, g := range c.gpus {
		if !g.reserved {
			out = append(out, g)
		}
	}
	return out
}

// NumFree reports the number of unreserved GPUs.
func (c *Cluster) NumFree() int {
	n := 0
	for _, g := range c.gpus {
		if !g.reserved {
			n++
		}
	}
	return n
}

// Reserve marks n free GPUs as allocated and returns them. GPUs are chosen in
// tree order, which packs allocations by locality (same switch, then socket,
// then node) — the placement a locality-aware scheduler would produce.
func (c *Cluster) Reserve(n int) ([]*GPU, error) {
	free := c.FreeGPUs()
	if len(free) < n {
		return nil, fmt.Errorf("topology: reserve %d GPUs, only %d free", n, len(free))
	}
	out := free[:n]
	for _, g := range out {
		g.reserved = true
	}
	return out, nil
}

// ReserveSpecific marks the given GPUs as allocated, failing if any is
// already reserved.
func (c *Cluster) ReserveSpecific(ids []GPUID) ([]*GPU, error) {
	out := make([]*GPU, 0, len(ids))
	for _, id := range ids {
		g, ok := c.byID[id]
		if !ok {
			return nil, fmt.Errorf("topology: unknown GPU %v", id)
		}
		if g.reserved {
			return nil, fmt.Errorf("topology: GPU %v already reserved", id)
		}
		out = append(out, g)
	}
	for _, g := range out {
		g.reserved = true
	}
	return out, nil
}

// Release frees previously reserved GPUs. Releasing an unreserved GPU is a
// no-op so that teardown paths are idempotent.
func (c *Cluster) Release(gpus []*GPU) {
	for _, g := range gpus {
		g.reserved = false
	}
}

// Link classifies the path between two GPUs. Identical GPUs are L1 (an
// intra-device copy is at least as fast as P2P).
func Link(a, b GPUID) LinkLevel {
	switch {
	case a.Node != b.Node:
		return L4
	case a.Socket != b.Socket:
		return L3
	case a.Switch != b.Switch:
		return L2
	default:
		return L1
	}
}

// TransferTime returns the simulated time to move size bytes between two
// GPUs over the best transport for their link level.
func (c *Cluster) TransferTime(a, b GPUID, size int64) time.Duration {
	return c.TransportTime(TransportFor(Link(a, b)), size)
}

// TransportTime returns the alpha-beta cost of moving size bytes over a
// transport: latency + size/peak.
func (c *Cluster) TransportTime(tr Transport, size int64) time.Duration {
	spec := c.geom.LinkSpecs[tr]
	if size < 0 {
		size = 0
	}
	sec := float64(size) / spec.PeakBytesPerSec
	return spec.Latency + time.Duration(sec*float64(time.Second))
}

// EffectiveBandwidth returns the achieved bytes/sec for a transfer of size
// bytes over the given transport, i.e. size divided by TransportTime. This
// reproduces the saturating bandwidth-vs-size curves of Figure 8.
func (c *Cluster) EffectiveBandwidth(tr Transport, size int64) float64 {
	if size <= 0 {
		return 0
	}
	t := c.TransportTime(tr, size)
	return float64(size) / t.Seconds()
}

// ContentionKey identifies the physical resource a transfer between a and b
// occupies exclusively. Transfers with equal non-empty keys must serialize
// (Section IV: replications traversing L3 contend; network transfers contend
// on the endpoints' NICs). L1 and L2 paths are independent per switch pair
// and effectively contention-free for our purposes, so their key is "".
func ContentionKey(a, b GPUID) string {
	switch Link(a, b) {
	case L3:
		// The socket-level (QPI) link of the shared node.
		return fmt.Sprintf("qpi:n%d", a.Node)
	case L4:
		// Both NICs are occupied; key on the lower node so that any pair of
		// transfers touching the same node serializes. We conservatively key
		// on both endpoints joined in sorted order.
		lo, hi := a.Node, b.Node
		if lo > hi {
			lo, hi = hi, lo
		}
		return fmt.Sprintf("nic:n%d+n%d", lo, hi)
	default:
		return ""
	}
}

// NICKeys returns the per-endpoint NIC contention keys of an L4 path; used
// by schedulers that model NIC occupancy per node rather than per pair.
func NICKeys(a, b GPUID) []string {
	if Link(a, b) != L4 {
		return nil
	}
	return []string{fmt.Sprintf("nic:n%d", a.Node), fmt.Sprintf("nic:n%d", b.Node)}
}

// Nearest selects the closest GPU to target among candidates: the one with
// the lowest link level, tie-broken by GPUID order for determinism. It
// returns false if candidates is empty.
func Nearest(target GPUID, candidates []GPUID) (GPUID, bool) {
	if len(candidates) == 0 {
		return GPUID{}, false
	}
	best := candidates[0]
	bestLevel := Link(target, candidates[0])
	for _, c := range candidates[1:] {
		level := Link(target, c)
		if level < bestLevel || (level == bestLevel && c.less(best)) {
			best = c
			bestLevel = level
		}
	}
	return best, true
}

// SortGPUs orders ids in deterministic tree order, in place.
func SortGPUs(ids []GPUID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].less(ids[j]) })
}

// IDsOf extracts the IDs of a GPU slice.
func IDsOf(gpus []*GPU) []GPUID {
	out := make([]GPUID, len(gpus))
	for i, g := range gpus {
		out[i] = g.ID
	}
	return out
}
