package topology

import (
	"testing"
	"testing/quick"
	"time"
)

func mustCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestDefaultGeometrySize(t *testing.T) {
	c := mustCluster(t)
	if got := c.NumGPUs(); got != 64 {
		t.Fatalf("NumGPUs = %d, want 64", got)
	}
	if got := c.GPUsPerNode(); got != 8 {
		t.Fatalf("GPUsPerNode = %d, want 8", got)
	}
}

func TestNewClusterValidation(t *testing.T) {
	bad := DefaultGeometry()
	bad.Nodes = 0
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	missing := DefaultGeometry()
	missing.LinkSpecs = map[Transport]LinkSpec{P2P: {Latency: time.Microsecond, PeakBytesPerSec: 1e9}}
	if _, err := NewCluster(missing); err == nil {
		t.Fatal("missing link specs accepted")
	}
}

func TestLinkLevels(t *testing.T) {
	cases := []struct {
		a, b GPUID
		want LinkLevel
	}{
		{GPUID{0, 0, 0, 0}, GPUID{0, 0, 0, 1}, L1},
		{GPUID{0, 0, 0, 0}, GPUID{0, 0, 0, 0}, L1},
		{GPUID{0, 0, 0, 0}, GPUID{0, 0, 1, 0}, L2},
		{GPUID{0, 0, 0, 0}, GPUID{0, 1, 0, 0}, L3},
		{GPUID{0, 0, 0, 0}, GPUID{1, 0, 0, 0}, L4},
	}
	for _, c := range cases {
		if got := Link(c.a, c.b); got != c.want {
			t.Errorf("Link(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := Link(c.b, c.a); got != c.want {
			t.Errorf("Link(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLinkSymmetryProperty(t *testing.T) {
	prop := func(an, as, ap, ag, bn, bs, bp, bg uint8) bool {
		a := GPUID{int(an % 8), int(as % 2), int(ap % 2), int(ag % 2)}
		b := GPUID{int(bn % 8), int(bs % 2), int(bp % 2), int(bg % 2)}
		return Link(a, b) == Link(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransportFor(t *testing.T) {
	cases := map[LinkLevel]Transport{L1: P2P, L2: SHM, L3: SHM, L4: NET}
	for level, want := range cases {
		if got := TransportFor(level); got != want {
			t.Errorf("TransportFor(%v) = %v, want %v", level, got, want)
		}
	}
}

func TestBandwidthOrdering(t *testing.T) {
	c := mustCluster(t)
	// For any message size, P2P >= SHM >= NET effective bandwidth (Fig 8).
	for _, size := range []int64{4 << 10, 1 << 20, 64 << 20, 1 << 30} {
		p2p := c.EffectiveBandwidth(P2P, size)
		shm := c.EffectiveBandwidth(SHM, size)
		net := c.EffectiveBandwidth(NET, size)
		if !(p2p > shm && shm > net) {
			t.Errorf("size %d: bandwidth ordering violated: P2P=%.3g SHM=%.3g NET=%.3g", size, p2p, shm, net)
		}
	}
}

func TestBandwidthSaturates(t *testing.T) {
	c := mustCluster(t)
	// Effective bandwidth must increase with message size and approach peak.
	prev := 0.0
	for _, size := range []int64{4 << 10, 256 << 10, 16 << 20, 1 << 30} {
		bw := c.EffectiveBandwidth(P2P, size)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at size %d: %v <= %v", size, bw, prev)
		}
		prev = bw
	}
	peak := DefaultLinkSpecs()[P2P].PeakBytesPerSec
	if prev > peak {
		t.Fatalf("effective bandwidth %v exceeds peak %v", prev, peak)
	}
	if prev < 0.9*peak {
		t.Fatalf("1GB transfer achieves only %.2f%% of peak", 100*prev/peak)
	}
}

func TestTransferTime(t *testing.T) {
	c := mustCluster(t)
	a := GPUID{0, 0, 0, 0}
	b := GPUID{0, 0, 0, 1} // L1 -> P2P
	d := c.TransferTime(a, b, 12e9)
	// 12 GB over 12 GB/s P2P = ~1s plus tiny latency.
	if d < time.Second || d > time.Second+time.Millisecond {
		t.Fatalf("TransferTime = %v, want ~1s", d)
	}
	if got := c.TransferTime(a, b, -5); got != DefaultLinkSpecs()[P2P].Latency {
		t.Fatalf("negative size transfer = %v, want pure latency", got)
	}
}

func TestContentionKey(t *testing.T) {
	sameSwitch := ContentionKey(GPUID{0, 0, 0, 0}, GPUID{0, 0, 0, 1})
	if sameSwitch != "" {
		t.Errorf("L1 contention key = %q, want empty", sameSwitch)
	}
	qpi := ContentionKey(GPUID{2, 0, 0, 0}, GPUID{2, 1, 0, 0})
	if qpi != "qpi:n2" {
		t.Errorf("L3 contention key = %q", qpi)
	}
	net1 := ContentionKey(GPUID{0, 0, 0, 0}, GPUID{3, 0, 0, 0})
	net2 := ContentionKey(GPUID{3, 1, 1, 1}, GPUID{0, 1, 0, 0})
	if net1 == "" || net1 != net2 {
		t.Errorf("L4 contention keys differ for same node pair: %q vs %q", net1, net2)
	}
}

func TestNICKeys(t *testing.T) {
	keys := NICKeys(GPUID{0, 0, 0, 0}, GPUID{5, 0, 0, 0})
	if len(keys) != 2 || keys[0] != "nic:n0" || keys[1] != "nic:n5" {
		t.Fatalf("NICKeys = %v", keys)
	}
	if got := NICKeys(GPUID{0, 0, 0, 0}, GPUID{0, 1, 0, 0}); got != nil {
		t.Fatalf("intra-node NICKeys = %v, want nil", got)
	}
}

func TestNearest(t *testing.T) {
	target := GPUID{0, 1, 0, 0}
	candidates := []GPUID{
		{1, 0, 0, 0}, // L4
		{0, 0, 0, 0}, // L3
		{0, 1, 1, 0}, // L2
	}
	got, ok := Nearest(target, candidates)
	if !ok || got != (GPUID{0, 1, 1, 0}) {
		t.Fatalf("Nearest = %v, %v; want n0.s1.p1.g0", got, ok)
	}
	if _, ok := Nearest(target, nil); ok {
		t.Fatal("Nearest on empty candidates returned ok")
	}
}

func TestNearestTieBreakDeterministic(t *testing.T) {
	target := GPUID{0, 0, 0, 0}
	// Both candidates are L4; the smaller ID must win regardless of order.
	a := GPUID{5, 0, 0, 0}
	b := GPUID{3, 0, 0, 0}
	got1, _ := Nearest(target, []GPUID{a, b})
	got2, _ := Nearest(target, []GPUID{b, a})
	if got1 != b || got2 != b {
		t.Fatalf("tie-break non-deterministic: %v vs %v", got1, got2)
	}
}

func TestNearestPrefersLowerLevel(t *testing.T) {
	// Property: the selected candidate's level is minimal.
	prop := func(tn, ts uint8, raw []uint8) bool {
		target := GPUID{int(tn % 4), int(ts % 2), 0, 0}
		if len(raw) == 0 {
			return true
		}
		candidates := make([]GPUID, 0, len(raw))
		for i := 0; i+3 < len(raw); i += 4 {
			candidates = append(candidates, GPUID{
				int(raw[i] % 4), int(raw[i+1] % 2), int(raw[i+2] % 2), int(raw[i+3] % 2),
			})
		}
		if len(candidates) == 0 {
			return true
		}
		best, ok := Nearest(target, candidates)
		if !ok {
			return false
		}
		for _, c := range candidates {
			if Link(target, c) < Link(target, best) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReserveRelease(t *testing.T) {
	c := mustCluster(t)
	gpus, err := c.Reserve(10)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if len(gpus) != 10 {
		t.Fatalf("reserved %d", len(gpus))
	}
	if c.NumFree() != 54 {
		t.Fatalf("NumFree = %d, want 54", c.NumFree())
	}
	// Locality: the first 8 reserved GPUs must be on node 0.
	for i := 0; i < 8; i++ {
		if gpus[i].ID.Node != 0 {
			t.Fatalf("gpu %d on node %d, want 0", i, gpus[i].ID.Node)
		}
	}
	c.Release(gpus)
	if c.NumFree() != 64 {
		t.Fatalf("after release NumFree = %d", c.NumFree())
	}
	// Idempotent release.
	c.Release(gpus)
	if c.NumFree() != 64 {
		t.Fatalf("double release NumFree = %d", c.NumFree())
	}
}

func TestReserveExhaustion(t *testing.T) {
	c := mustCluster(t)
	if _, err := c.Reserve(65); err == nil {
		t.Fatal("over-reserve succeeded")
	}
	if c.NumFree() != 64 {
		t.Fatalf("failed reserve leaked: NumFree = %d", c.NumFree())
	}
}

func TestReserveSpecific(t *testing.T) {
	c := mustCluster(t)
	ids := []GPUID{{0, 0, 0, 0}, {1, 1, 1, 1}}
	gpus, err := c.ReserveSpecific(ids)
	if err != nil {
		t.Fatalf("ReserveSpecific: %v", err)
	}
	if len(gpus) != 2 {
		t.Fatalf("got %d GPUs", len(gpus))
	}
	if _, err := c.ReserveSpecific(ids[:1]); err == nil {
		t.Fatal("double ReserveSpecific succeeded")
	}
	if _, err := c.ReserveSpecific([]GPUID{{9, 9, 9, 9}}); err == nil {
		t.Fatal("unknown GPU reserved")
	}
	// Atomicity: a failed batch must not reserve anything.
	free := c.NumFree()
	if _, err := c.ReserveSpecific([]GPUID{{2, 0, 0, 0}, {0, 0, 0, 0}}); err == nil {
		t.Fatal("partially-conflicting batch succeeded")
	}
	if c.NumFree() != free {
		t.Fatalf("failed batch leaked reservations: %d -> %d", free, c.NumFree())
	}
}

func TestSortGPUs(t *testing.T) {
	ids := []GPUID{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {0, 0, 0, 0}}
	SortGPUs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i].less(ids[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, ids)
		}
	}
	if ids[0] != (GPUID{0, 0, 0, 0}) {
		t.Fatalf("first = %v", ids[0])
	}
}

func TestGPUIDString(t *testing.T) {
	id := GPUID{1, 0, 1, 0}
	if got := id.String(); got != "n1.s0.p1.g0" {
		t.Fatalf("String = %q", got)
	}
}

func TestPaperExampleFigure9(t *testing.T) {
	// Figure 9: A,B on the same PCIe switch; C on the other socket of the
	// same node; D on a different node. New workers E (same socket as C) and
	// F (same node as D). Nearest existing neighbor of E must be C (SHM) and
	// of F must be D.
	a := GPUID{0, 0, 0, 0}
	b := GPUID{0, 0, 0, 1}
	cID := GPUID{0, 1, 0, 0}
	d := GPUID{1, 0, 0, 0}
	e := GPUID{0, 1, 0, 1} // same switch as C -> L1 actually; paper says "under the same socket"
	f := GPUID{1, 0, 1, 0} // same node as D
	existing := []GPUID{a, b, cID, d}
	srcE, _ := Nearest(e, existing)
	srcF, _ := Nearest(f, existing)
	if srcE != cID {
		t.Fatalf("nearest(E) = %v, want C", srcE)
	}
	if srcF != d {
		t.Fatalf("nearest(F) = %v, want D", srcF)
	}
	// The two replications use disjoint contention domains and may run
	// concurrently.
	k1 := ContentionKey(srcE, e)
	k2 := ContentionKey(srcF, f)
	if k1 != "" && k1 == k2 {
		t.Fatalf("paper-example replications contend: %q", k1)
	}
}
