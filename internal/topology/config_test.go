package topology

import (
	"strings"
	"testing"
	"time"
)

func TestParseGeometry(t *testing.T) {
	data := []byte(`{
		"nodes": 4, "socketsPerNode": 2, "switchesPerSocket": 1,
		"gpusPerSwitch": 4, "gpuMemoryGB": 16,
		"links": {
			"p2p": {"latencyMicros": 5, "peakGBps": 20},
			"net": {"latencyMicros": 40, "peakGBps": 10}
		}
	}`)
	g, err := ParseGeometry(data)
	if err != nil {
		t.Fatalf("ParseGeometry: %v", err)
	}
	if g.Nodes != 4 || g.SocketsPerNode != 2 || g.SwitchesPerSock != 1 || g.GPUsPerSwitch != 4 {
		t.Fatalf("dims = %+v", g)
	}
	if g.GPUMemoryBytes != 16<<30 {
		t.Fatalf("memory = %d", g.GPUMemoryBytes)
	}
	// Overridden links applied; SHM stays default.
	if g.LinkSpecs[P2P].PeakBytesPerSec != 20e9 || g.LinkSpecs[P2P].Latency != 5*time.Microsecond {
		t.Fatalf("p2p spec = %+v", g.LinkSpecs[P2P])
	}
	if g.LinkSpecs[SHM] != DefaultLinkSpecs()[SHM] {
		t.Fatalf("shm not defaulted: %+v", g.LinkSpecs[SHM])
	}
	// The parsed geometry builds a working cluster.
	c, err := NewCluster(g)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if c.NumGPUs() != 32 {
		t.Fatalf("NumGPUs = %d", c.NumGPUs())
	}
}

func TestParseGeometryErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"nodes": 0, "socketsPerNode": 1, "switchesPerSocket": 1, "gpusPerSwitch": 1}`,
		`{"nodes": 1, "socketsPerNode": 1, "switchesPerSocket": 1, "gpusPerSwitch": 1,
		  "links": {"warp": {"latencyMicros": 1, "peakGBps": 1}}}`,
		`{"nodes": 1, "socketsPerNode": 1, "switchesPerSocket": 1, "gpusPerSwitch": 1,
		  "links": {"p2p": {"latencyMicros": 1, "peakGBps": 0}}}`,
	}
	for i, c := range cases {
		if _, err := ParseGeometry([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeometryRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	data, err := EncodeGeometry(g)
	if err != nil {
		t.Fatalf("EncodeGeometry: %v", err)
	}
	if !strings.Contains(string(data), "\"p2p\"") {
		t.Fatalf("encoded geometry missing links:\n%s", data)
	}
	back, err := ParseGeometry(data)
	if err != nil {
		t.Fatalf("ParseGeometry: %v", err)
	}
	if back.Nodes != g.Nodes || back.GPUsPerSwitch != g.GPUsPerSwitch {
		t.Fatalf("round trip dims differ: %+v vs %+v", back, g)
	}
	for _, tr := range []Transport{P2P, SHM, NET} {
		if back.LinkSpecs[tr] != g.LinkSpecs[tr] {
			t.Fatalf("link %v differs: %+v vs %+v", tr, back.LinkSpecs[tr], g.LinkSpecs[tr])
		}
	}
	if back.GPUMemoryBytes != g.GPUMemoryBytes {
		t.Fatalf("memory differs: %d vs %d", back.GPUMemoryBytes, g.GPUMemoryBytes)
	}
}

func FuzzParseGeometry(f *testing.F) {
	seed, err := EncodeGeometry(DefaultGeometry())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"nodes":1,"socketsPerNode":1,"switchesPerSocket":1,"gpusPerSwitch":1}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ParseGeometry([]byte(data))
		if err != nil {
			return // malformed input must only error, never panic
		}
		// Any accepted geometry must build a valid cluster.
		c, err := NewCluster(g)
		if err != nil {
			t.Fatalf("accepted geometry does not build: %v (%+v)", err, g)
		}
		if c.NumGPUs() <= 0 {
			t.Fatalf("cluster with %d GPUs", c.NumGPUs())
		}
	})
}
