package topology

import (
	"encoding/json"
	"fmt"
	"time"
)

// GeometryConfig is the human-editable JSON form of a cluster geometry, so
// deployments can describe their hardware in a config file instead of code:
//
//	{
//	  "nodes": 8, "socketsPerNode": 2, "switchesPerSocket": 2,
//	  "gpusPerSwitch": 2, "gpuMemoryGB": 11,
//	  "links": {
//	    "p2p": {"latencyMicros": 10, "peakGBps": 12},
//	    "shm": {"latencyMicros": 25, "peakGBps": 7},
//	    "net": {"latencyMicros": 50, "peakGBps": 4.5}
//	  }
//	}
type GeometryConfig struct {
	Nodes             int                       `json:"nodes"`
	SocketsPerNode    int                       `json:"socketsPerNode"`
	SwitchesPerSocket int                       `json:"switchesPerSocket"`
	GPUsPerSwitch     int                       `json:"gpusPerSwitch"`
	GPUMemoryGB       float64                   `json:"gpuMemoryGB"`
	Links             map[string]LinkSpecConfig `json:"links"`
}

// LinkSpecConfig is a link calibration in config units.
type LinkSpecConfig struct {
	LatencyMicros float64 `json:"latencyMicros"`
	PeakGBps      float64 `json:"peakGBps"`
}

var transportNames = map[string]Transport{
	"p2p": P2P,
	"shm": SHM,
	"net": NET,
}

// ParseGeometry decodes a JSON geometry description. Missing links fall
// back to the defaults; other fields are required.
func ParseGeometry(data []byte) (Geometry, error) {
	var cfg GeometryConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Geometry{}, fmt.Errorf("topology: parse geometry: %w", err)
	}
	if cfg.Nodes <= 0 || cfg.SocketsPerNode <= 0 || cfg.SwitchesPerSocket <= 0 || cfg.GPUsPerSwitch <= 0 {
		return Geometry{}, fmt.Errorf("topology: non-positive dimensions in config %+v", cfg)
	}
	g := Geometry{
		Nodes:           cfg.Nodes,
		SocketsPerNode:  cfg.SocketsPerNode,
		SwitchesPerSock: cfg.SwitchesPerSocket,
		GPUsPerSwitch:   cfg.GPUsPerSwitch,
		LinkSpecs:       DefaultLinkSpecs(),
	}
	if cfg.GPUMemoryGB > 0 {
		g.GPUMemoryBytes = int64(cfg.GPUMemoryGB * (1 << 30))
	}
	for name, spec := range cfg.Links {
		tr, ok := transportNames[name]
		if !ok {
			return Geometry{}, fmt.Errorf("topology: unknown link %q (want p2p/shm/net)", name)
		}
		if spec.PeakGBps <= 0 || spec.LatencyMicros < 0 {
			return Geometry{}, fmt.Errorf("topology: invalid link spec %q: %+v", name, spec)
		}
		g.LinkSpecs[tr] = LinkSpec{
			Latency:         time.Duration(spec.LatencyMicros * float64(time.Microsecond)),
			PeakBytesPerSec: spec.PeakGBps * 1e9,
		}
	}
	return g, nil
}

// EncodeGeometry renders a geometry as its JSON config form.
func EncodeGeometry(g Geometry) ([]byte, error) {
	cfg := GeometryConfig{
		Nodes:             g.Nodes,
		SocketsPerNode:    g.SocketsPerNode,
		SwitchesPerSocket: g.SwitchesPerSock,
		GPUsPerSwitch:     g.GPUsPerSwitch,
		GPUMemoryGB:       float64(g.GPUMemoryBytes) / (1 << 30),
		Links:             make(map[string]LinkSpecConfig, len(g.LinkSpecs)),
	}
	for name, tr := range transportNames {
		spec, ok := g.LinkSpecs[tr]
		if !ok {
			continue
		}
		cfg.Links[name] = LinkSpecConfig{
			LatencyMicros: float64(spec.Latency) / float64(time.Microsecond),
			PeakGBps:      spec.PeakBytesPerSec / 1e9,
		}
	}
	out, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("topology: encode geometry: %w", err)
	}
	return out, nil
}
