package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/elan-sys/elan/internal/racecheck"
)

// forcePool lowers the parallel-work threshold so even 1x1 shapes dispatch
// through the pool, and restores everything on cleanup.
func forcePool(t *testing.T) {
	t.Helper()
	prevWork := minParallelWork
	prevK := Parallelism()
	minParallelWork = 0
	t.Cleanup(func() {
		minParallelWork = prevWork
		SetParallelism(prevK)
	})
}

// fillAdversarial populates m with a mix of ordinary values, exact zeros
// (which the kernels skip), denormals, infinities and NaNs, so bitwise
// comparison exercises the full accumulation-order contract.
func fillAdversarial(rng *rand.Rand, m *Matrix, special bool) {
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = -0.0
		case 2:
			if special {
				m.Data[i] = math.Inf(1 - 2*rng.Intn(2))
			} else {
				m.Data[i] = rng.NormFloat64() * 1e-300
			}
		case 3:
			if special {
				m.Data[i] = math.NaN()
			} else {
				m.Data[i] = rng.NormFloat64() * 1e300
			}
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
}

// bitsEqual compares two matrices bit for bit (so NaN payloads and signed
// zeros must match exactly).
func bitsEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// intoShapes are the adversarial (m, k, n) matmul shapes: 1x1, shapes with
// ragged kBlock remainders, fewer rows than workers, single row/column, and
// a shape big enough to cross minParallelWork at default settings.
var intoShapes = [][3]int{
	{1, 1, 1},
	{1, 7, 1},
	{2, 1, 3},
	{3, 129, 5},   // k = kBlock + 1: ragged remainder tile
	{5, 128, 3},   // k = exactly one tile
	{5, 256, 3},   // k = two exact tiles
	{7, 300, 11},  // two tiles + remainder
	{2, 50, 64},   // rows < any realistic worker count
	{13, 17, 19},  // all-prime raggedness
	{64, 33, 48},  // moderately large, crosses minParallelWork
	{1, 1000, 1},  // long dot product, single row
	{100, 1, 100}, // rank-1 outer product
}

func TestMatMulIntoMatchesNaiveBitwise(t *testing.T) {
	forcePool(t)
	rng := rand.New(rand.NewSource(7))
	for _, sh := range intoShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, special := range []bool{false, true} {
			a := MustNew(m, k)
			b := MustNew(k, n)
			fillAdversarial(rng, a, special)
			fillAdversarial(rng, b, special)
			want, err := MatMul(a, b)
			if err != nil {
				t.Fatalf("MatMul(%dx%d, %dx%d): %v", m, k, k, n, err)
			}
			for _, workers := range []int{1, 2, 8} {
				SetParallelism(workers)
				dst := MustNew(m, n)
				fillAdversarial(rng, dst, special) // Into must fully overwrite
				if err := MatMulInto(dst, a, b); err != nil {
					t.Fatalf("MatMulInto k=%d shape=%v: %v", workers, sh, err)
				}
				if !bitsEqual(dst, want) {
					t.Fatalf("MatMulInto k=%d shape=%v special=%v differs from naive", workers, sh, special)
				}
			}
		}
	}
}

func TestMatMulATIntoMatchesNaiveBitwise(t *testing.T) {
	forcePool(t)
	rng := rand.New(rand.NewSource(11))
	for _, sh := range intoShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, special := range []bool{false, true} {
			a := MustNew(k, m) // dst = a^T b is m x n
			b := MustNew(k, n)
			fillAdversarial(rng, a, special)
			fillAdversarial(rng, b, special)
			want, err := MatMulAT(a, b)
			if err != nil {
				t.Fatalf("MatMulAT shape=%v: %v", sh, err)
			}
			for _, workers := range []int{1, 2, 8} {
				SetParallelism(workers)
				dst := MustNew(m, n)
				fillAdversarial(rng, dst, special)
				if err := MatMulATInto(dst, a, b); err != nil {
					t.Fatalf("MatMulATInto k=%d shape=%v: %v", workers, sh, err)
				}
				if !bitsEqual(dst, want) {
					t.Fatalf("MatMulATInto k=%d shape=%v special=%v differs from naive", workers, sh, special)
				}
			}
		}
	}
}

func TestMatMulBTIntoMatchesNaiveBitwise(t *testing.T) {
	forcePool(t)
	rng := rand.New(rand.NewSource(13))
	for _, sh := range intoShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, special := range []bool{false, true} {
			a := MustNew(m, k)
			b := MustNew(n, k) // dst = a b^T is m x n
			fillAdversarial(rng, a, special)
			fillAdversarial(rng, b, special)
			want, err := MatMulBT(a, b)
			if err != nil {
				t.Fatalf("MatMulBT shape=%v: %v", sh, err)
			}
			for _, workers := range []int{1, 2, 8} {
				SetParallelism(workers)
				dst := MustNew(m, n)
				fillAdversarial(rng, dst, special)
				if err := MatMulBTInto(dst, a, b); err != nil {
					t.Fatalf("MatMulBTInto k=%d shape=%v: %v", workers, sh, err)
				}
				if !bitsEqual(dst, want) {
					t.Fatalf("MatMulBTInto k=%d shape=%v special=%v differs from naive", workers, sh, special)
				}
			}
		}
	}
}

func TestSumRowsIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range [][2]int{{1, 1}, {1, 9}, {9, 1}, {13, 17}, {200, 3}} {
		m := MustNew(sh[0], sh[1])
		fillAdversarial(rng, m, true)
		want := m.SumRows()
		dst := MustNew(1, sh[1])
		fillAdversarial(rng, dst, true)
		if err := m.SumRowsInto(dst); err != nil {
			t.Fatalf("SumRowsInto %v: %v", sh, err)
		}
		if !bitsEqual(dst, want) {
			t.Fatalf("SumRowsInto %v differs from SumRows", sh)
		}
	}
}

func TestReLUIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, sh := range [][2]int{{1, 1}, {3, 5}, {40, 7}} {
		m := MustNew(sh[0], sh[1])
		fillAdversarial(rng, m, true)
		ref := m.Clone()
		wantMask := ref.ReLU()
		mask := MustNew(sh[0], sh[1])
		fillAdversarial(rng, mask, false) // stale mask must be fully rewritten
		if err := m.ReLUInto(mask); err != nil {
			t.Fatalf("ReLUInto %v: %v", sh, err)
		}
		if !bitsEqual(m, ref) {
			t.Fatalf("ReLUInto %v activation differs from ReLU", sh)
		}
		if !bitsEqual(mask, wantMask) {
			t.Fatalf("ReLUInto %v mask differs from ReLU", sh)
		}
	}
}

func TestIntoKernelShapeAndAliasValidation(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(3, 4)
	if err := MatMulInto(MustNew(2, 3), a, b); err == nil {
		t.Fatal("wrong-shape dst accepted")
	}
	if err := MatMulInto(a, a, b); err == nil {
		t.Fatal("dst aliasing a accepted")
	}
	if err := MatMulATInto(MustNew(3, 4), a, MustNew(3, 4)); err == nil {
		t.Fatal("matmulAT with mismatched inner dims accepted")
	}
	if err := MatMulBTInto(MustNew(2, 5), a, MustNew(5, 9)); err == nil {
		t.Fatal("matmulBT with mismatched inner dims accepted")
	}
	m := MustNew(4, 3)
	if err := m.SumRowsInto(MustNew(2, 3)); err == nil {
		t.Fatal("wrong-shape sum-rows dst accepted")
	}
	if err := m.ReLUInto(MustNew(3, 4)); err == nil {
		t.Fatal("wrong-shape relu mask accepted")
	}
	if err := m.ReLUInto(m); err == nil {
		t.Fatal("relu mask aliasing input accepted")
	}
}

// Fuzz-style differential check: random shapes (including degenerate ones)
// through every Into kernel at a randomly chosen parallelism level.
func TestIntoKernelsRandomizedDifferential(t *testing.T) {
	forcePool(t)
	rng := rand.New(rand.NewSource(23))
	levels := []int{1, 2, 3, 8}
	for iter := 0; iter < 60; iter++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(300)
		n := 1 + rng.Intn(40)
		SetParallelism(levels[rng.Intn(len(levels))])

		a := MustNew(m, k)
		b := MustNew(k, n)
		fillAdversarial(rng, a, iter%2 == 0)
		fillAdversarial(rng, b, iter%2 == 0)
		want, _ := MatMul(a, b)
		dst := MustNew(m, n)
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatalf("iter %d: MatMulInto: %v", iter, err)
		}
		if !bitsEqual(dst, want) {
			t.Fatalf("iter %d: MatMulInto(%dx%dx%d) at k=%d differs", iter, m, k, n, Parallelism())
		}

		at := MustNew(k, m)
		fillAdversarial(rng, at, iter%2 == 0)
		wantAT, _ := MatMulAT(at, b)
		dstAT := MustNew(m, n)
		if err := MatMulATInto(dstAT, at, b); err != nil {
			t.Fatalf("iter %d: MatMulATInto: %v", iter, err)
		}
		if !bitsEqual(dstAT, wantAT) {
			t.Fatalf("iter %d: MatMulATInto(%dx%dx%d) at k=%d differs", iter, m, k, n, Parallelism())
		}

		bt := MustNew(n, k)
		fillAdversarial(rng, bt, iter%2 == 0)
		wantBT, _ := MatMulBT(a, bt)
		dstBT := MustNew(m, n)
		if err := MatMulBTInto(dstBT, a, bt); err != nil {
			t.Fatalf("iter %d: MatMulBTInto: %v", iter, err)
		}
		if !bitsEqual(dstBT, wantBT) {
			t.Fatalf("iter %d: MatMulBTInto(%dx%dx%d) at k=%d differs", iter, m, k, n, Parallelism())
		}
	}
}

// TestSetParallelismGoroutineAccounting checks that reconfiguring retires
// the old helper generation synchronously: the resident goroutine count is
// a deterministic function of the setting.
func TestSetParallelismGoroutineAccounting(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	base := runtime.NumGoroutine()
	SetParallelism(5)
	if got := runtime.NumGoroutine(); got != base+4 {
		t.Fatalf("5-way pool: %d goroutines, want %d", got, base+4)
	}
	SetParallelism(2)
	if got := runtime.NumGoroutine(); got != base+1 {
		t.Fatalf("2-way pool: %d goroutines, want %d", got, base+1)
	}
	SetParallelism(1)
	if got := runtime.NumGoroutine(); got != base {
		t.Fatalf("serial pool: %d goroutines, want %d", got, base)
	}
}

// TestMatMulIntoZeroAllocs is the tentpole proof for the kernels: after the
// operands exist, MatMulInto performs zero allocations per call, serial and
// parallel alike. AllocsPerRun counts mallocs process-wide, so helper
// goroutine activity is included in the measurement.
func TestMatMulIntoZeroAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race CI job")
	}
	forcePool(t)
	rng := rand.New(rand.NewSource(29))
	a := MustNew(64, 64)
	b := MustNew(64, 64)
	dst := MustNew(64, 64)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		if avg := testing.AllocsPerRun(100, func() {
			if err := MatMulInto(dst, a, b); err != nil {
				t.Fatal(err)
			}
			if err := MatMulATInto(dst, a, b); err != nil {
				t.Fatal(err)
			}
			if err := MatMulBTInto(dst, a, b); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("parallelism %d: %v allocs/op, want 0", workers, avg)
		}
	}
}
