// Worker pool behind the parallel kernels. The pool partitions a kernel's
// output rows into blocks and lets a fixed set of resident goroutines claim
// blocks from an atomic cursor. Determinism contract: every output row is
// written by exactly one goroutine and each kernel computes a row with the
// exact accumulation order of its naive reference, so results are
// bit-identical at every parallelism level (including 1, the serial inline
// path).
//
// The steady-state dispatch is allocation-free: wake/done tokens are
// zero-size channel sends, the region descriptor lives in pool fields, and
// the kernels are references to top-level functions (no closures).
package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// kernelFn computes output rows [lo, hi) of dst from a and b. A kernel must
// write only rows it owns so that concurrently executed blocks stay
// disjoint.
type kernelFn func(dst, a, b *Matrix, lo, hi int)

// minParallelWork is the approximate multiply-add count below which a
// kernel runs serially inline: dispatching a few-microsecond matmul to the
// pool costs more than it saves, and the tiny per-agent matmuls of a
// many-agent fleet would otherwise contend on the single region lock.
// Package tests lower it to force small shapes through the pool.
var minParallelWork = 1 << 15

// pool is the package-wide region executor. One region runs at a time
// (mu); submitters below the work threshold bypass it entirely.
type pool struct {
	k  atomic.Int64 // configured parallelism, including the submitter
	mu sync.Mutex   // serializes regions and reconfiguration

	stop chan struct{} // close to retire the current helper generation
	wake chan struct{} // one token per helper starts a region
	done chan struct{} // one token per helper ends its participation
	wg   sync.WaitGroup

	// Region descriptor, written by the submitter under mu before the wake
	// tokens are sent (the channel send publishes the fields to helpers).
	kern      kernelFn
	dst, a, b *Matrix
	rows      int
	blockRows int
	next      atomic.Int64
}

var par = newPool(runtime.GOMAXPROCS(0))

// newPool builds the package pool at init time, so its resident goroutines
// exist before any test records a goroutine baseline.
func newPool(k int) *pool {
	p := &pool{}
	p.configure(k)
	return p
}

// SetParallelism sets the number of goroutines the parallel kernels may use
// (including the calling one) and returns the previous setting. k <= 1
// makes every kernel run serially inline. The default is GOMAXPROCS at
// package initialization. Safe for concurrent use, but reconfiguring while
// kernels run serializes behind them.
func SetParallelism(k int) int { return par.configure(k) }

// Parallelism returns the current parallelism setting.
func Parallelism() int { return int(par.k.Load()) }

// configure retires the current helper generation (waiting for the
// goroutines to exit, so goroutine counts stay deterministic) and spawns
// k-1 fresh helpers.
func (p *pool) configure(k int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k < 1 {
		k = 1
	}
	prev := int(p.k.Load())
	if p.stop != nil {
		close(p.stop)
		p.wg.Wait()
		p.stop = nil
	}
	p.k.Store(int64(k))
	if k > 1 {
		p.stop = make(chan struct{})
		p.wake = make(chan struct{}, k-1)
		p.done = make(chan struct{}, k-1)
		p.wg.Add(k - 1)
		for i := 0; i < k-1; i++ {
			go p.helper(p.stop, p.wake, p.done)
		}
	}
	return prev
}

// helper is one resident pool goroutine: it joins every region announced on
// wake and reports completion on done. The channels are passed explicitly
// so a retired generation never touches its successor's channels.
//
//elan:hotpath
func (p *pool) helper(stop, wake, done chan struct{}) {
	defer p.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-wake:
			p.work()
			done <- struct{}{}
		}
	}
}

// work claims row blocks until the region is exhausted. Claiming is
// dynamic (atomic cursor) for load balance; determinism is unaffected
// because block results are independent.
//
//elan:hotpath
func (p *pool) work() {
	for {
		blk := p.next.Add(1) - 1
		lo := int(blk) * p.blockRows
		if lo >= p.rows {
			return
		}
		hi := lo + p.blockRows
		if hi > p.rows {
			hi = p.rows
		}
		p.kern(p.dst, p.a, p.b, lo, hi)
	}
}

// run executes kern over rows output rows, fanning out to the pool when the
// estimated work (multiply-adds) is large enough to amortize dispatch.
//
//elan:hotpath
func (p *pool) run(kern kernelFn, dst, a, b *Matrix, rows, work int) {
	if rows < 2 || work < minParallelWork || p.k.Load() < 2 {
		kern(dst, a, b, 0, rows)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	helpers := int(p.k.Load()) - 1
	if helpers == 0 { // raced with SetParallelism(1)
		kern(dst, a, b, 0, rows)
		return
	}
	p.kern, p.dst, p.a, p.b = kern, dst, a, b
	p.rows = rows
	p.blockRows = blockRowsFor(rows, helpers+1)
	p.next.Store(0)
	for i := 0; i < helpers; i++ {
		p.wake <- struct{}{}
	}
	p.work() // the submitter participates
	for i := 0; i < helpers; i++ {
		<-p.done
	}
	p.kern, p.dst, p.a, p.b = nil, nil, nil, nil
}

// blockRowsFor picks the claim granularity: a handful of blocks per worker
// for load balance, but never so small that claim traffic dominates.
func blockRowsFor(rows, k int) int {
	b := rows / (4 * k)
	if b < 1 {
		b = 1
	}
	return b
}
