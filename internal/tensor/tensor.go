// Package tensor implements the minimal dense linear algebra needed by the
// pure-Go neural-network substrate: row-major float64 matrices with the
// operations required for MLP forward/backward passes (matmul with optional
// transposition, elementwise maps, axpy) and flattening helpers used by the
// gradient allreduce and by training-state replication.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix. Data has length Rows*Cols.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix of the given shape.
func New(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: invalid shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// MustNew is New for statically correct shapes; it panics on invalid shape
// and is intended for package-internal construction only.
func MustNew(rows, cols int) *Matrix {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("tensor: %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data))
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: invalid shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// Randn fills m with N(0, stddev^2) samples from rng.
func (m *Matrix) Randn(rng *rand.Rand, stddev float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
}

// At returns the element at (r, c). Bounds are the caller's responsibility;
// this accessor is for tests and small code paths, hot loops index Data.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies all elements by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Axpy computes m += a*x elementwise. Shapes must match.
func (m *Matrix) Axpy(a float64, x *Matrix) error {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		return fmt.Errorf("tensor: axpy shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, x.Rows, x.Cols)
	}
	for i := range m.Data {
		m.Data[i] += a * x.Data[i]
	}
	return nil
}

// aliases reports whether two matrices share the same backing array start
// (the full-overlap case the Into kernels must reject; partial overlap via
// hand-built subslices is the caller's responsibility).
func aliases(x, y *Matrix) bool {
	return len(x.Data) > 0 && len(y.Data) > 0 && &x.Data[0] == &y.Data[0]
}

// kBlock is the tile width of the shared dimension in the blocked matmul
// kernels: one tile of b (kBlock rows) stays cache-resident while a block
// of output rows streams over it. Within each output element the iteration
// order stays k-ascending, so blocked results are bit-identical to the
// naive kernels.
const kBlock = 128

// MatMulInto computes dst = a*b into the caller-owned dst, allocation-free
// and (for large shapes) on the package worker pool. dst must not alias a
// or b. Results are bit-identical to MatMul at every parallelism level:
// each output row is owned by exactly one goroutine and accumulates in the
// same k-ascending order as the naive kernel.
//
//elan:hotpath
func MatMulInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("tensor: matmul %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("tensor: matmul into %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if aliases(dst, a) || aliases(dst, b) {
		return fmt.Errorf("tensor: matmul destination aliases an operand") //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	par.run(matMulRows, dst, a, b, dst.Rows, a.Rows*a.Cols*b.Cols)
	return nil
}

// matMulRows computes rows [lo, hi) of dst = a*b with k-blocking.
//
//elan:hotpath
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range row {
			row[j] = 0
		}
	}
	for k0 := 0; k0 < a.Cols; k0 += kBlock {
		k1 := k0 + kBlock
		if k1 > a.Cols {
			k1 = a.Cols
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for k := k0; k < k1; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// MatMulATInto computes dst = aᵀ*b into the caller-owned dst (see
// MatMulInto for the aliasing and determinism contract).
//
//elan:hotpath
func MatMulATInto(dst, a, b *Matrix) error {
	if a.Rows != b.Rows {
		return fmt.Errorf("tensor: matmulAT %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		return fmt.Errorf("tensor: matmulAT into %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if aliases(dst, a) || aliases(dst, b) {
		return fmt.Errorf("tensor: matmulAT destination aliases an operand") //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	par.run(matMulATRows, dst, a, b, dst.Rows, a.Rows*a.Cols*b.Cols)
	return nil
}

// matMulATRows computes rows [lo, hi) of dst = aᵀ*b. The k loop (rows of a
// and b) stays outermost, matching the naive MatMulAT accumulation order
// per output element.
//
//elan:hotpath
func matMulATRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range row {
			row[j] = 0
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulBTInto computes dst = a*bᵀ into the caller-owned dst (see
// MatMulInto for the aliasing and determinism contract).
//
//elan:hotpath
func MatMulBTInto(dst, a, b *Matrix) error {
	if a.Cols != b.Cols {
		return fmt.Errorf("tensor: matmulBT %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("tensor: matmulBT into %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if aliases(dst, a) || aliases(dst, b) {
		return fmt.Errorf("tensor: matmulBT destination aliases an operand") //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	par.run(matMulBTRows, dst, a, b, dst.Rows, a.Rows*a.Cols*b.Rows)
	return nil
}

// matMulBTRows computes rows [lo, hi) of dst = a*bᵀ as row-dot-products,
// exactly as the naive MatMulBT does.
//
//elan:hotpath
func matMulBTRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
}

// MatMul returns a*b. It is the allocating naive reference; hot paths use
// MatMulInto with a reused destination.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := MustNew(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulAT returns aᵀ*b (a is used transposed).
func MatMulAT(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: matmulAT %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := MustNew(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulBT returns a*bᵀ (b is used transposed).
func MatMulBT(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("tensor: matmulBT %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := MustNew(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
	return out, nil
}

// AddRowVector adds vector v (1 x Cols) to every row of m, in place.
func (m *Matrix) AddRowVector(v *Matrix) error {
	if v.Rows != 1 || v.Cols != m.Cols {
		return fmt.Errorf("tensor: add row vector %dx%d to %dx%d", v.Rows, v.Cols, m.Rows, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
	return nil
}

// SumRows returns the 1 x Cols column sums of m.
func (m *Matrix) SumRows() *Matrix {
	out := MustNew(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			out.Data[j] += row[j]
		}
	}
	return out
}

// SumRowsInto writes the 1 x Cols column sums of m into the caller-owned
// dst, allocation-free. dst must not alias m.
//
//elan:hotpath
func (m *Matrix) SumRowsInto(dst *Matrix) error {
	if dst.Rows != 1 || dst.Cols != m.Cols {
		return fmt.Errorf("tensor: sum rows of %dx%d into %dx%d", m.Rows, m.Cols, dst.Rows, dst.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if aliases(dst, m) {
		return fmt.Errorf("tensor: sum rows destination aliases the source") //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			dst.Data[j] += row[j]
		}
	}
	return nil
}

// Apply maps f over all elements in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i := range m.Data {
		m.Data[i] = f(m.Data[i])
	}
}

// ReLU applies max(0, x) in place and returns a mask matrix with 1 where the
// input was positive, used by the backward pass.
func (m *Matrix) ReLU() *Matrix {
	mask := MustNew(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// ReLUInto applies max(0, x) to m in place and writes the positive-input
// mask into the caller-owned mask (1 where the input was positive, 0
// elsewhere), allocation-free. mask must not alias m.
//
//elan:hotpath
func (m *Matrix) ReLUInto(mask *Matrix) error {
	if mask.Rows != m.Rows || mask.Cols != m.Cols {
		return fmt.Errorf("tensor: relu mask %dx%d for %dx%d", mask.Rows, mask.Cols, m.Rows, m.Cols) //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	if aliases(mask, m) {
		return fmt.Errorf("tensor: relu mask aliases the input") //elan:vet-allow hotpathalloc — cold validation error path, never taken in the zero-alloc steady state
	}
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			mask.Data[i] = 0
			m.Data[i] = 0
		}
	}
	return nil
}

// Hadamard computes m *= x elementwise.
func (m *Matrix) Hadamard(x *Matrix) error {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		return fmt.Errorf("tensor: hadamard shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] *= x.Data[i]
	}
	return nil
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// FlattenTo appends all elements of the matrices to dst in order and returns
// the extended slice; the inverse is UnflattenFrom.
func FlattenTo(dst []float64, ms ...*Matrix) []float64 {
	for _, m := range ms {
		dst = append(dst, m.Data...)
	}
	return dst
}

// UnflattenFrom copies values from src back into the matrices in order and
// returns the number of values consumed.
func UnflattenFrom(src []float64, ms ...*Matrix) (int, error) {
	off := 0
	for _, m := range ms {
		n := len(m.Data)
		if off+n > len(src) {
			return off, fmt.Errorf("tensor: unflatten needs %d values, have %d", off+n, len(src))
		}
		copy(m.Data, src[off:off+n])
		off += n
	}
	return off, nil
}

// NumElements returns the total element count of the matrices.
func NumElements(ms ...*Matrix) int {
	n := 0
	for _, m := range ms {
		n += len(m.Data)
	}
	return n
}
