package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := New(3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
	m, err := New(2, 3)
	if err != nil || m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New = %+v, %v", m, err)
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MustNew(4, 3)
	b := MustNew(4, 5)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got, err := MatMulAT(a, b)
	if err != nil {
		t.Fatalf("MatMulAT: %v", err)
	}
	// Explicit transpose.
	at := MustNew(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want, _ := MatMul(at, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulAT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	if _, err := MatMulAT(a, MustNew(3, 2)); err == nil {
		t.Fatal("MatMulAT shape mismatch accepted")
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := MustNew(4, 3)
	b := MustNew(5, 3)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got, err := MatMulBT(a, b)
	if err != nil {
		t.Fatalf("MatMulBT: %v", err)
	}
	bt := MustNew(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want, _ := MatMul(a, bt)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulBT mismatch at %d", i)
		}
	}
	if _, err := MatMulBT(a, MustNew(5, 4)); err == nil {
		t.Fatal("MatMulBT shape mismatch accepted")
	}
}

func TestAxpyAndScale(t *testing.T) {
	m, _ := FromSlice(1, 3, []float64{1, 2, 3})
	x, _ := FromSlice(1, 3, []float64{10, 20, 30})
	if err := m.Axpy(0.5, x); err != nil {
		t.Fatalf("Axpy: %v", err)
	}
	for i, w := range []float64{6, 12, 18} {
		if !almostEq(m.Data[i], w) {
			t.Fatalf("Axpy = %v", m.Data)
		}
	}
	m.Scale(2)
	if !almostEq(m.Data[0], 12) {
		t.Fatalf("Scale = %v", m.Data)
	}
	if err := m.Axpy(1, MustNew(2, 2)); err == nil {
		t.Fatal("Axpy shape mismatch accepted")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	m, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	v, _ := FromSlice(1, 2, []float64{10, 20})
	if err := m.AddRowVector(v); err != nil {
		t.Fatalf("AddRowVector: %v", err)
	}
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if !almostEq(m.Data[i], w) {
			t.Fatalf("AddRowVector = %v", m.Data)
		}
	}
	s := m.SumRows()
	if !almostEq(s.Data[0], 24) || !almostEq(s.Data[1], 46) {
		t.Fatalf("SumRows = %v", s.Data)
	}
	if err := m.AddRowVector(MustNew(1, 3)); err == nil {
		t.Fatal("AddRowVector shape mismatch accepted")
	}
}

func TestReLUAndMask(t *testing.T) {
	m, _ := FromSlice(1, 4, []float64{-1, 2, 0, 3})
	mask := m.ReLU()
	wantVals := []float64{0, 2, 0, 3}
	wantMask := []float64{0, 1, 0, 1}
	for i := range wantVals {
		if !almostEq(m.Data[i], wantVals[i]) || !almostEq(mask.Data[i], wantMask[i]) {
			t.Fatalf("ReLU = %v mask %v", m.Data, mask.Data)
		}
	}
}

func TestHadamard(t *testing.T) {
	m, _ := FromSlice(1, 3, []float64{1, 2, 3})
	x, _ := FromSlice(1, 3, []float64{2, 0, -1})
	if err := m.Hadamard(x); err != nil {
		t.Fatalf("Hadamard: %v", err)
	}
	for i, w := range []float64{2, 0, -3} {
		if !almostEq(m.Data[i], w) {
			t.Fatalf("Hadamard = %v", m.Data)
		}
	}
	if err := m.Hadamard(MustNew(2, 2)); err == nil {
		t.Fatal("Hadamard shape mismatch accepted")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m, _ := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	m.SoftmaxRows()
	// Rows sum to 1.
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += m.At(i, j)
		}
		if !almostEq(sum, 1) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Second row: stable at large magnitudes, uniform.
	if !almostEq(m.At(1, 0), 1.0/3.0) {
		t.Fatalf("large-value softmax = %v", m.At(1, 0))
	}
	// First row monotone.
	if !(m.At(0, 0) < m.At(0, 1) && m.At(0, 1) < m.At(0, 2)) {
		t.Fatal("softmax not monotone")
	}
}

func TestSoftmaxRowsProperty(t *testing.T) {
	prop := func(vals [6]float64) bool {
		data := make([]float64, 6)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			data[i] = math.Mod(v, 50)
		}
		m, err := FromSlice(2, 3, data)
		if err != nil {
			return false
		}
		m.SoftmaxRows()
		for i := 0; i < 2; i++ {
			var sum float64
			for j := 0; j < 3; j++ {
				p := m.At(i, j)
				if p < 0 || p > 1 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := MustNew(2, 3)
	b := MustNew(4, 1)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	flat := FlattenTo(nil, a, b)
	if len(flat) != 10 {
		t.Fatalf("flat len = %d", len(flat))
	}
	a2 := MustNew(2, 3)
	b2 := MustNew(4, 1)
	n, err := UnflattenFrom(flat, a2, b2)
	if err != nil || n != 10 {
		t.Fatalf("UnflattenFrom = %d, %v", n, err)
	}
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("round trip mismatch in a")
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("round trip mismatch in b")
		}
	}
	if _, err := UnflattenFrom(flat[:5], a2, b2); err == nil {
		t.Fatal("short unflatten accepted")
	}
	if got := NumElements(a, b); got != 10 {
		t.Fatalf("NumElements = %d", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestNormZeroHasNaN(t *testing.T) {
	m, _ := FromSlice(1, 2, []float64{3, 4})
	if !almostEq(m.Norm(), 5) {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.HasNaN() {
		t.Fatal("HasNaN false positive")
	}
	m.Data[0] = math.NaN()
	if !m.HasNaN() {
		t.Fatal("HasNaN missed NaN")
	}
	m.Data[0] = math.Inf(1)
	if !m.HasNaN() {
		t.Fatal("HasNaN missed Inf")
	}
	m.Zero()
	if m.Norm() != 0 {
		t.Fatal("Zero did not zero")
	}
}
