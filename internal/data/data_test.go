package data

import (
	"testing"
	"testing/quick"
)

func TestGenGaussianMixtureDeterministic(t *testing.T) {
	a, err := GenGaussianMixture(7, 100, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	b, err := GenGaussianMixture(7, 100, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	if a.N() != 100 || b.N() != 100 {
		t.Fatalf("N = %d, %d", a.N(), b.N())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different features")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c, err := GenGaussianMixture(8, 100, 4, 3)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	same := true
	for i := range a.X {
		if a.X[i] != c.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenGaussianMixtureValidation(t *testing.T) {
	if _, err := GenGaussianMixture(1, 0, 4, 3); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := GenGaussianMixture(1, 10, 1, 3); err == nil {
		t.Fatal("one feature accepted")
	}
	if _, err := GenGaussianMixture(1, 10, 4, 1); err == nil {
		t.Fatal("one class accepted")
	}
}

func TestGenGaussianMixtureLabelsInRange(t *testing.T) {
	d, err := GenGaussianMixture(3, 500, 3, 5)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	seen := map[int]int{}
	for _, y := range d.Y {
		if y < 0 || y >= 5 {
			t.Fatalf("label %d out of range", y)
		}
		seen[y]++
	}
	// All classes represented in 500 samples.
	for c := 0; c < 5; c++ {
		if seen[c] == 0 {
			t.Fatalf("class %d missing", c)
		}
	}
}

func TestBatchWraps(t *testing.T) {
	d, err := GenGaussianMixture(1, 10, 2, 2)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	x, y, err := d.Batch(8, 12)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if x.Rows != 4 || len(y) != 4 {
		t.Fatalf("batch shape %d, %d", x.Rows, len(y))
	}
	// Rows 2 and 3 wrap to dataset indices 0 and 1.
	if y[2] != d.Y[0] || y[3] != d.Y[1] {
		t.Fatal("batch did not wrap")
	}
	if _, _, err := d.Batch(5, 5); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestSerialLoaderAdvances(t *testing.T) {
	l, err := NewSerialLoader(100)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	// 2 workers, batch 10 each: iteration 1 covers [0,10) and [10,20).
	lo0, hi0, err := l.NextBatch(0, 2, 10)
	if err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	lo1, hi1, err := l.NextBatch(1, 2, 10)
	if err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	if lo0 != 0 || hi0 != 10 || lo1 != 10 || hi1 != 20 {
		t.Fatalf("ranges = [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1)
	}
	// Cursor advanced only after both workers fetched.
	if l.Cursor() != 20 {
		t.Fatalf("cursor = %d, want 20", l.Cursor())
	}
	if l.Remaining() != 80 {
		t.Fatalf("remaining = %d, want 80", l.Remaining())
	}
}

func TestSerialLoaderRemainingContiguous(t *testing.T) {
	// The essential property of the serial semantics: after any number of
	// iterations, the remaining data is the suffix [cursor, epoch).
	l, err := NewSerialLoader(1000)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	covered := map[int]bool{}
	workers, bs := 4, 25
	for iter := 0; iter < 3; iter++ {
		for w := 0; w < workers; w++ {
			lo, hi, err := l.NextBatch(w, workers, bs)
			if err != nil {
				t.Fatalf("NextBatch: %v", err)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("sample %d read twice", i)
				}
				covered[i] = true
			}
		}
	}
	// Everything before the cursor is covered, nothing after.
	for i := 0; i < 1000; i++ {
		want := i < l.Cursor()
		if covered[i] != want {
			t.Fatalf("sample %d covered=%v, want %v", i, covered[i], want)
		}
	}
}

func TestSerialLoaderRepartitionPreservesCursor(t *testing.T) {
	l, err := NewSerialLoader(100)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	for w := 0; w < 2; w++ {
		if _, _, err := l.NextBatch(w, 2, 10); err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
	}
	cur := l.Cursor()
	if err := l.Repartition(2, 4); err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if l.Cursor() != cur {
		t.Fatalf("repartition moved cursor %d -> %d", cur, l.Cursor())
	}
	// New iteration with 4 workers continues from the cursor.
	lo, _, err := l.NextBatch(0, 4, 5)
	if err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	if lo != cur {
		t.Fatalf("first batch after repartition starts at %d, want %d", lo, cur)
	}
	if err := l.Repartition(4, 0); err == nil {
		t.Fatal("repartition to 0 workers accepted")
	}
}

func TestSerialLoaderStateIsOneInteger(t *testing.T) {
	l, err := NewSerialLoader(100)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	if l.StateBytes() != 8 {
		t.Fatalf("StateBytes = %d, want 8", l.StateBytes())
	}
	if err := l.SetCursor(42); err != nil {
		t.Fatalf("SetCursor: %v", err)
	}
	if l.Cursor() != 42 {
		t.Fatalf("Cursor = %d", l.Cursor())
	}
	if err := l.SetCursor(100); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
	l.ResetEpoch()
	if l.Cursor() != 0 {
		t.Fatal("ResetEpoch did not reset")
	}
}

func TestSerialLoaderWrapsEpoch(t *testing.T) {
	l, err := NewSerialLoader(40)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	// One worker, batch 30: second fetch wraps.
	if _, _, err := l.NextBatch(0, 1, 30); err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	if _, _, err := l.NextBatch(0, 1, 30); err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	if l.Cursor() != 20 {
		t.Fatalf("cursor after wrap = %d, want 20", l.Cursor())
	}
}

func TestSerialLoaderValidation(t *testing.T) {
	if _, err := NewSerialLoader(0); err == nil {
		t.Fatal("zero epoch accepted")
	}
	l, err := NewSerialLoader(10)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	if _, _, err := l.NextBatch(2, 2, 1); err == nil {
		t.Fatal("worker index out of range accepted")
	}
	if _, _, err := l.NextBatch(0, 2, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestChunkLoaderCoversEpochOnce(t *testing.T) {
	l, err := NewChunkLoader(100, 10, 4)
	if err != nil {
		t.Fatalf("NewChunkLoader: %v", err)
	}
	covered := map[int]bool{}
	total := 0
	for total < 100 {
		progressed := false
		for w := 0; w < 4; w++ {
			lo, hi, err := l.NextBatch(w, 4, 7)
			if err != nil {
				continue // this worker may be out of chunks
			}
			progressed = true
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("sample %d read twice", i)
				}
				covered[i] = true
				total++
			}
		}
		if !progressed {
			break
		}
	}
	if total != 100 {
		t.Fatalf("covered %d of 100 samples", total)
	}
	if l.Remaining() != 0 {
		t.Fatalf("Remaining = %d", l.Remaining())
	}
}

func TestChunkLoaderFragmentation(t *testing.T) {
	// After partial consumption the remaining data is fragmented: the chunk
	// state is much bigger than the serial loader's single integer.
	l, err := NewChunkLoader(10000, 10, 8)
	if err != nil {
		t.Fatalf("NewChunkLoader: %v", err)
	}
	if l.StateBytes() <= 8 {
		t.Fatalf("chunk state %d bytes, want > 8", l.StateBytes())
	}
	serial, err := NewSerialLoader(10000)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	if l.StateBytes() < 100*serial.StateBytes() {
		t.Fatalf("chunk state (%d) not >> serial state (%d)", l.StateBytes(), serial.StateBytes())
	}
}

func TestChunkLoaderRepartitionPreservesRemaining(t *testing.T) {
	l, err := NewChunkLoader(100, 10, 2)
	if err != nil {
		t.Fatalf("NewChunkLoader: %v", err)
	}
	for w := 0; w < 2; w++ {
		if _, _, err := l.NextBatch(w, 2, 10); err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
	}
	before := l.Remaining()
	if err := l.Repartition(2, 5); err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if l.Remaining() != before {
		t.Fatalf("repartition changed remaining: %d -> %d", before, l.Remaining())
	}
	// All remaining samples are still readable exactly once by 5 workers.
	covered := 0
	for covered < before {
		progressed := false
		for w := 0; w < 5; w++ {
			lo, hi, err := l.NextBatch(w, 5, 10)
			if err != nil {
				continue
			}
			covered += hi - lo
			progressed = true
		}
		if !progressed {
			break
		}
	}
	if covered != before {
		t.Fatalf("after repartition covered %d of %d", covered, before)
	}
	if err := l.Repartition(5, 0); err == nil {
		t.Fatal("repartition to 0 accepted")
	}
}

func TestChunkLoaderResetEpoch(t *testing.T) {
	l, err := NewChunkLoader(50, 10, 2)
	if err != nil {
		t.Fatalf("NewChunkLoader: %v", err)
	}
	if _, _, err := l.NextBatch(0, 2, 10); err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	l.ResetEpoch()
	if l.Remaining() != 50 {
		t.Fatalf("Remaining after reset = %d", l.Remaining())
	}
}

func TestChunkLoaderValidation(t *testing.T) {
	if _, err := NewChunkLoader(0, 10, 2); err == nil {
		t.Fatal("zero epoch accepted")
	}
	if _, err := NewChunkLoader(10, 0, 2); err == nil {
		t.Fatal("zero chunk accepted")
	}
	if _, err := NewChunkLoader(10, 5, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	l, err := NewChunkLoader(10, 5, 2)
	if err != nil {
		t.Fatalf("NewChunkLoader: %v", err)
	}
	if _, _, err := l.NextBatch(5, 2, 1); err == nil {
		t.Fatal("worker out of range accepted")
	}
}

func TestLoaderConsistencyProperty(t *testing.T) {
	// Property: for any fetch pattern, serial loader never hands out an
	// index twice within an epoch (until the cursor wraps).
	prop := func(fetches []uint8) bool {
		l, err := NewSerialLoader(1 << 16)
		if err != nil {
			return false
		}
		workers := 4
		seen := map[int]bool{}
		for i := 0; i < len(fetches) && i < 30; i++ {
			bs := int(fetches[i]%32) + 1
			for w := 0; w < workers; w++ {
				lo, hi, err := l.NextBatch(w, workers, bs)
				if err != nil {
					return false
				}
				if hi > 1<<16 {
					return true // wrapped; stop checking
				}
				for k := lo; k < hi; k++ {
					if seen[k] {
						return false
					}
					seen[k] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
