// Package data provides the synthetic training dataset and the two
// data-loading semantics the paper compares (Section V-C, Figure 13):
//
//   - serial semantics: workers fetch batches from a single global cursor,
//     so the remaining data is always one contiguous suffix and the loading
//     state is a single integer — cheap to replicate and to repartition;
//   - chunk-based semantics: the dataset is pre-partitioned into chunks and
//     each worker consumes its own chunks, so the remaining data fragments
//     during training and the state is a record table.
//
// The dataset itself is a seeded Gaussian-mixture classification problem
// (the ImageNet substitute) so that accuracy experiments run real SGD.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/elan-sys/elan/internal/tensor"
)

// Dataset is an in-memory labeled dataset with Features columns per sample.
type Dataset struct {
	Features int
	Classes  int
	X        []float64 // row-major, len = N*Features
	Y        []int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Y) }

// Batch materializes samples [lo, hi) as a matrix and label slice. Indices
// wrap around the dataset (epoch boundary), so hi may exceed N.
func (d *Dataset) Batch(lo, hi int) (*tensor.Matrix, []int, error) {
	if hi <= lo {
		return nil, nil, fmt.Errorf("data: empty batch [%d, %d)", lo, hi)
	}
	n := hi - lo
	x := tensor.MustNew(n, d.Features)
	y := make([]int, n)
	if err := d.BatchInto(x, y, lo, hi); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// BatchInto materializes samples [lo, hi) into the caller-owned x and y,
// allocation-free; workers reuse one batch buffer across steps. Shapes
// must match exactly: x is (hi-lo) x Features and y has hi-lo entries.
// Indices wrap around the dataset, so hi may exceed N.
func (d *Dataset) BatchInto(x *tensor.Matrix, y []int, lo, hi int) error {
	if hi <= lo {
		return fmt.Errorf("data: empty batch [%d, %d)", lo, hi)
	}
	n := hi - lo
	if x.Rows != n || x.Cols != d.Features || len(y) != n {
		return fmt.Errorf("data: batch buffers %dx%d/%d for batch [%d, %d) of %d features",
			x.Rows, x.Cols, len(y), lo, hi, d.Features)
	}
	for i := 0; i < n; i++ {
		idx := (lo + i) % d.N()
		copy(x.Data[i*d.Features:(i+1)*d.Features], d.X[idx*d.Features:(idx+1)*d.Features])
		y[i] = d.Y[idx]
	}
	return nil
}

// GenGaussianMixture creates a classification dataset of n samples with the
// given number of classes: each class is an isotropic Gaussian blob on a
// circle, with enough overlap that accuracy is a meaningful, non-saturating
// metric. The generator is fully determined by seed.
func GenGaussianMixture(seed int64, n, features, classes int) (*Dataset, error) {
	if n <= 0 || features < 2 || classes < 2 {
		return nil, fmt.Errorf("data: invalid dataset spec n=%d features=%d classes=%d", n, features, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Features: features,
		Classes:  classes,
		X:        make([]float64, n*features),
		Y:        make([]int, n),
	}
	// Class centers on the unit circle in the first two dimensions, with a
	// small deterministic offset pattern in the remaining dimensions.
	const radius = 2.0
	const noise = 0.9
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		d.Y[i] = c
		angle := 2 * math.Pi * float64(c) / float64(classes)
		row := d.X[i*features : (i+1)*features]
		row[0] = radius*math.Cos(angle) + rng.NormFloat64()*noise
		row[1] = radius*math.Sin(angle) + rng.NormFloat64()*noise
		for f := 2; f < features; f++ {
			center := 0.5 * float64((c+f)%classes) / float64(classes)
			row[f] = center + rng.NormFloat64()*noise
		}
	}
	return d, nil
}

// Loader is a data-loading semantics: it hands out per-worker sample ranges
// and exposes the state that must be replicated on elastic adjustments.
type Loader interface {
	// NextBatch returns the global index range assigned to worker w for the
	// current iteration, given per-worker batch size bs. Calling it for all
	// workers of an iteration advances the epoch position.
	NextBatch(w, nWorkers, bs int) (lo, hi int, err error)
	// Remaining returns how many samples of the current epoch are unread.
	Remaining() int
	// Repartition adapts the loader to a new worker count, preserving the
	// set of unread samples (data consistency, Section V-C).
	Repartition(oldWorkers, newWorkers int) error
	// StateBytes is the serialized size of the loading state.
	StateBytes() int64
	// ResetEpoch starts a new epoch.
	ResetEpoch()
}

// SerialLoader implements the paper's serial data-loading semantics: a
// single global cursor. Workers of one iteration read adjacent slices
// [cursor + w*bs, cursor + (w+1)*bs); the iteration advances the cursor by
// nWorkers*bs. Remaining data is always the contiguous suffix, so the whole
// state is one integer.
type SerialLoader struct {
	epochSize int
	cursor    int
	// pending tracks how many workers of the current iteration have fetched,
	// to know when to advance the cursor.
	fetched int
	nper    int
}

// NewSerialLoader creates a serial loader over an epoch of epochSize samples.
func NewSerialLoader(epochSize int) (*SerialLoader, error) {
	if epochSize <= 0 {
		return nil, fmt.Errorf("data: non-positive epoch size %d", epochSize)
	}
	return &SerialLoader{epochSize: epochSize}, nil
}

// NextBatch implements Loader.
func (l *SerialLoader) NextBatch(w, nWorkers, bs int) (int, int, error) {
	if w < 0 || w >= nWorkers || bs <= 0 {
		return 0, 0, fmt.Errorf("data: invalid fetch w=%d n=%d bs=%d", w, nWorkers, bs)
	}
	lo := l.cursor + w*bs
	hi := lo + bs
	l.fetched++
	l.nper = nWorkers * bs
	if l.fetched == nWorkers {
		l.cursor += l.nper
		l.fetched = 0
		if l.cursor >= l.epochSize {
			l.cursor -= l.epochSize // wrap into next epoch
		}
	}
	return lo, hi, nil
}

// Remaining implements Loader.
func (l *SerialLoader) Remaining() int { return l.epochSize - l.cursor }

// Repartition implements Loader. For the serial semantics this is free: the
// cursor is already worker-count independent.
func (l *SerialLoader) Repartition(oldWorkers, newWorkers int) error {
	if newWorkers <= 0 {
		return fmt.Errorf("data: repartition to %d workers", newWorkers)
	}
	l.fetched = 0
	return nil
}

// StateBytes implements Loader: the cursor is a single 8-byte integer.
func (l *SerialLoader) StateBytes() int64 { return 8 }

// ResetEpoch implements Loader.
func (l *SerialLoader) ResetEpoch() { l.cursor, l.fetched = 0, 0 }

// Cursor exposes the single-integer state for replication.
func (l *SerialLoader) Cursor() int { return l.cursor }

// SetCursor restores the replicated state.
func (l *SerialLoader) SetCursor(c int) error {
	if c < 0 || c >= l.epochSize {
		return fmt.Errorf("data: cursor %d out of [0, %d)", c, l.epochSize)
	}
	l.cursor = c
	l.fetched = 0
	return nil
}

// ChunkLoader implements the chunk-based semantics used by most frameworks:
// the epoch is split into fixed-size chunks assigned round-robin to workers;
// each worker consumes its chunks in order. Remaining data fragments, so the
// replication state is the full per-chunk consumption table.
type ChunkLoader struct {
	epochSize int
	chunkSize int
	// consumed[i] is how many samples of chunk i have been read.
	consumed []int
	// owner[i] is the worker currently assigned chunk i, -1 when finished.
	owner []int
	// next[w] is the chunk index worker w reads next.
	next []int
}

// NewChunkLoader creates a chunk loader with the given chunk size, assigning
// chunks round-robin across nWorkers.
func NewChunkLoader(epochSize, chunkSize, nWorkers int) (*ChunkLoader, error) {
	if epochSize <= 0 || chunkSize <= 0 || nWorkers <= 0 {
		return nil, fmt.Errorf("data: invalid chunk loader epoch=%d chunk=%d workers=%d",
			epochSize, chunkSize, nWorkers)
	}
	l := &ChunkLoader{epochSize: epochSize, chunkSize: chunkSize}
	l.assign(nWorkers)
	return l, nil
}

func (l *ChunkLoader) numChunks() int {
	return (l.epochSize + l.chunkSize - 1) / l.chunkSize
}

func (l *ChunkLoader) assign(nWorkers int) {
	nc := l.numChunks()
	if l.consumed == nil {
		l.consumed = make([]int, nc)
	}
	l.owner = make([]int, nc)
	l.next = make([]int, nWorkers)
	for w := range l.next {
		l.next[w] = -1
	}
	// Round-robin assignment of unfinished chunks.
	w := 0
	for i := 0; i < nc; i++ {
		if l.consumed[i] >= l.chunkLen(i) {
			l.owner[i] = -1
			continue
		}
		l.owner[i] = w % nWorkers
		if l.next[w%nWorkers] == -1 {
			l.next[w%nWorkers] = i
		}
		w++
	}
}

func (l *ChunkLoader) chunkLen(i int) int {
	lo := i * l.chunkSize
	hi := lo + l.chunkSize
	if hi > l.epochSize {
		hi = l.epochSize
	}
	return hi - lo
}

// NextBatch implements Loader. The batch may be smaller than bs at chunk
// boundaries; callers use the returned range length.
func (l *ChunkLoader) NextBatch(w, nWorkers, bs int) (int, int, error) {
	if w < 0 || w >= len(l.next) || bs <= 0 {
		return 0, 0, fmt.Errorf("data: invalid fetch w=%d bs=%d (workers=%d)", w, bs, len(l.next))
	}
	ci := l.next[w]
	// Find the worker's next unfinished chunk.
	for ci != -1 && l.consumed[ci] >= l.chunkLen(ci) {
		ci = l.nextChunkOf(w, ci)
	}
	if ci == -1 {
		// Epoch exhausted for this worker: wrap to a fresh epoch view.
		return 0, 0, fmt.Errorf("data: worker %d has no remaining chunks", w)
	}
	lo := ci*l.chunkSize + l.consumed[ci]
	n := bs
	if avail := l.chunkLen(ci) - l.consumed[ci]; n > avail {
		n = avail
	}
	l.consumed[ci] += n
	if l.consumed[ci] >= l.chunkLen(ci) {
		l.owner[ci] = -1
		l.next[w] = l.nextChunkOf(w, ci)
	} else {
		l.next[w] = ci
	}
	return lo, lo + n, nil
}

func (l *ChunkLoader) nextChunkOf(w, after int) int {
	for i := after + 1; i < len(l.owner); i++ {
		if l.owner[i] == w {
			return i
		}
	}
	return -1
}

// Remaining implements Loader.
func (l *ChunkLoader) Remaining() int {
	total := 0
	for i := range l.consumed {
		total += l.chunkLen(i) - l.consumed[i]
	}
	return total
}

// Repartition implements Loader: unfinished chunks are reassigned
// round-robin across the new worker count. This requires walking the whole
// record table, unlike the serial loader's O(1) repartition.
func (l *ChunkLoader) Repartition(oldWorkers, newWorkers int) error {
	if newWorkers <= 0 {
		return fmt.Errorf("data: repartition to %d workers", newWorkers)
	}
	l.assign(newWorkers)
	return nil
}

// StateBytes implements Loader: the consumption table at 8 bytes per chunk.
func (l *ChunkLoader) StateBytes() int64 { return int64(8 * l.numChunks()) }

// ResetEpoch implements Loader.
func (l *ChunkLoader) ResetEpoch() {
	for i := range l.consumed {
		l.consumed[i] = 0
	}
	l.assign(len(l.next))
}

var (
	_ Loader = (*SerialLoader)(nil)
	_ Loader = (*ChunkLoader)(nil)
)
