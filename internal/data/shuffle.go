package data

import (
	"fmt"
	"math/rand"

	"github.com/elan-sys/elan/internal/tensor"
)

// Epoch shuffling under the serial semantics: instead of materializing a
// shuffled copy of the dataset, every worker maps the loader's logical
// serial indices through a permutation derived deterministically from
// (seed, epoch). The loading state stays a single integer — the paper's
// property — because the permutation is recomputable anywhere from the two
// values that are already part of the runtime state.

// Permutation returns the deterministic sample order of one epoch.
func Permutation(seed int64, epoch, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: permutation over %d samples", n)
	}
	if epoch < 0 {
		return nil, fmt.Errorf("data: negative epoch %d", epoch)
	}
	// Mix the epoch into the seed so each epoch has a fresh order.
	const mix = int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)
	rng := rand.New(rand.NewSource(seed ^ (int64(epoch)+1)*mix))
	perm := rng.Perm(n)
	return perm, nil
}

// ShuffledBatch materializes the logical range [lo, hi) of the given epoch
// permutation as a training batch. The range wraps like Dataset.Batch.
func (d *Dataset) ShuffledBatch(perm []int, lo, hi int) (*tensor.Matrix, []int, error) {
	if len(perm) != d.N() {
		return nil, nil, fmt.Errorf("data: permutation of %d entries for %d samples", len(perm), d.N())
	}
	if hi <= lo {
		return nil, nil, fmt.Errorf("data: empty shuffled batch [%d, %d)", lo, hi)
	}
	n := hi - lo
	x := tensor.MustNew(n, d.Features)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		logical := (lo + i) % d.N()
		idx := perm[logical]
		copy(x.Data[i*d.Features:(i+1)*d.Features], d.X[idx*d.Features:(idx+1)*d.Features])
		y[i] = d.Y[idx]
	}
	return x, y, nil
}
