package data

import (
	"testing"
	"testing/quick"
)

func TestPermutationDeterministic(t *testing.T) {
	a, err := Permutation(7, 3, 100)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	b, err := Permutation(7, 3, 100)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, epoch) produced different permutations")
		}
	}
	c, err := Permutation(7, 4, 100)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs produced identical permutations")
	}
}

func TestPermutationIsBijection(t *testing.T) {
	prop := func(seed int64, epochRaw, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		epoch := int(epochRaw % 50)
		perm, err := Permutation(seed, epoch, n)
		if err != nil || len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationValidation(t *testing.T) {
	if _, err := Permutation(1, 0, 0); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := Permutation(1, -1, 10); err == nil {
		t.Fatal("negative epoch accepted")
	}
}

func TestShuffledBatch(t *testing.T) {
	d, err := GenGaussianMixture(1, 20, 2, 2)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	perm, err := Permutation(1, 0, 20)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	x, y, err := d.ShuffledBatch(perm, 0, 5)
	if err != nil {
		t.Fatalf("ShuffledBatch: %v", err)
	}
	if x.Rows != 5 || len(y) != 5 {
		t.Fatalf("shape %d, %d", x.Rows, len(y))
	}
	// Row i must be sample perm[i].
	for i := 0; i < 5; i++ {
		idx := perm[i]
		if y[i] != d.Y[idx] {
			t.Fatalf("row %d label %d, want %d", i, y[i], d.Y[idx])
		}
		for f := 0; f < 2; f++ {
			if x.At(i, f) != d.X[idx*2+f] {
				t.Fatalf("row %d feature %d mismatch", i, f)
			}
		}
	}
}

func TestShuffledBatchWraps(t *testing.T) {
	d, err := GenGaussianMixture(1, 10, 2, 2)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	perm, err := Permutation(1, 0, 10)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	x, y, err := d.ShuffledBatch(perm, 8, 12)
	if err != nil {
		t.Fatalf("ShuffledBatch: %v", err)
	}
	if x.Rows != 4 {
		t.Fatalf("rows = %d", x.Rows)
	}
	// Wrapped rows 2, 3 map to logical 0, 1.
	if y[2] != d.Y[perm[0]] || y[3] != d.Y[perm[1]] {
		t.Fatal("wrap mapping wrong")
	}
}

func TestShuffledBatchValidation(t *testing.T) {
	d, err := GenGaussianMixture(1, 10, 2, 2)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	if _, _, err := d.ShuffledBatch([]int{0, 1}, 0, 2); err == nil {
		t.Fatal("short permutation accepted")
	}
	perm, _ := Permutation(1, 0, 10)
	if _, _, err := d.ShuffledBatch(perm, 3, 3); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestShuffledEpochCoversAllSamplesOnce(t *testing.T) {
	// Serial loader + permutation: one epoch covers every sample exactly
	// once even with multiple workers.
	d, err := GenGaussianMixture(1, 64, 2, 2)
	if err != nil {
		t.Fatalf("GenGaussianMixture: %v", err)
	}
	perm, err := Permutation(9, 2, 64)
	if err != nil {
		t.Fatalf("Permutation: %v", err)
	}
	l, err := NewSerialLoader(64)
	if err != nil {
		t.Fatalf("NewSerialLoader: %v", err)
	}
	counts := make([]int, 64)
	for iter := 0; iter < 4; iter++ { // 4 iterations x 4 workers x 4 = 64
		for w := 0; w < 4; w++ {
			lo, hi, err := l.NextBatch(w, 4, 4)
			if err != nil {
				t.Fatalf("NextBatch: %v", err)
			}
			_, y, err := d.ShuffledBatch(perm, lo, hi)
			if err != nil {
				t.Fatalf("ShuffledBatch: %v", err)
			}
			_ = y
			for i := lo; i < hi; i++ {
				counts[perm[i%64]]++
			}
		}
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("sample %d visited %d times", i, c)
		}
	}
}
