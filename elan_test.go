package elan

import (
	"testing"
	"time"
)

func TestPublicAPIClusterAndJob(t *testing.T) {
	c, err := NewCluster(DefaultGeometry())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if c.NumGPUs() != 64 {
		t.Fatalf("NumGPUs = %d", c.NumGPUs())
	}
	m, err := ModelByName("ResNet-50")
	if err != nil {
		t.Fatalf("ModelByName: %v", err)
	}
	gpus, err := c.Reserve(16)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	ids := make([]GPUID, len(gpus))
	for i, g := range gpus {
		ids[i] = g.ID
	}
	job, err := NewJob(JobConfig{
		Model: m, Cluster: c, Workers: ids, TotalBatch: 512, LR: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	more, err := c.Reserve(16)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	moreIDs := make([]GPUID, len(more))
	for i, g := range more {
		moreIDs[i] = g.ID
	}
	rep, err := job.ScaleOut(moreIDs)
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if rep.Pause <= 0 || job.NumWorkers() != 32 {
		t.Fatalf("scale-out rep=%+v workers=%d", rep, job.NumWorkers())
	}
}

func TestPublicAPIModels(t *testing.T) {
	zoo := Models()
	if len(zoo) != 5 {
		t.Fatalf("Models() = %d entries", len(zoo))
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPublicAPILiveTraining(t *testing.T) {
	ds, err := GenDataset(3, 512, 2, 3)
	if err != nil {
		t.Fatalf("GenDataset: %v", err)
	}
	lj, err := NewLiveJob(LiveConfig{
		Dataset:    ds,
		LayerSizes: []int{2, 16, 3},
		Workers:    2,
		TotalBatch: 32,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	defer lj.Close()
	for i := 0; i < 5; i++ {
		if _, err := lj.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if err := lj.ScaleOut(2); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	if !lj.ReplicasConsistent() {
		t.Fatal("replicas inconsistent")
	}
}

func TestPublicAPIHybridScaling(t *testing.T) {
	h, err := NewHybridMechanism()
	if err != nil {
		t.Fatalf("NewHybridMechanism: %v", err)
	}
	m, _ := ModelByName("ResNet-50")
	dec, err := h.Decide(m, 16, 512, 32, 0.1)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if dec.TotalBatch < 512 {
		t.Fatalf("decision = %+v", dec)
	}
	sched, err := NewLRSchedule(0.1, 0.2, 0, 100)
	if err != nil {
		t.Fatalf("NewLRSchedule: %v", err)
	}
	if sched.At(50) <= 0.1 || sched.At(50) >= 0.2 {
		t.Fatalf("mid-ramp LR = %v", sched.At(50))
	}
}

func TestPublicAPIScheduling(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Span = 2 * time.Hour
	cfg.JobsPerDay = 120
	cfg.MeanServiceMinutes = 15
	jobs, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	res, err := RunSchedule(ElasticBackfill, IdealScheduleSystem(), 128, jobs)
	if err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	if len(res.Jobs) != len(jobs) || res.Makespan <= 0 {
		t.Fatalf("result = %d jobs, makespan %v", len(res.Jobs), res.Makespan)
	}
	hours, utils, err := TraceUtilization(jobs, 128, 5*time.Minute)
	if err != nil || len(hours) != len(utils) {
		t.Fatalf("TraceUtilization: %v", err)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	sr := NewSRBaseline(1)
	m, _ := ModelByName("VGG-19")
	rep, err := sr.Adjust(ScaleOut, m, 8, 16)
	if err != nil || rep.Pause <= 0 {
		t.Fatalf("SR Adjust = %+v, %v", rep, err)
	}
	litz, err := NewLitzBaseline(2)
	if err != nil {
		t.Fatalf("NewLitzBaseline: %v", err)
	}
	rel, err := litz.RelativeThroughput(m, 8, 24)
	if err != nil || rel <= 0 || rel > 1 {
		t.Fatalf("Litz RelativeThroughput = %v, %v", rel, err)
	}
	if _, err := NewLitzBaseline(0); err == nil {
		t.Fatal("zero executors accepted")
	}
}

func TestPublicAPIFleet(t *testing.T) {
	ds, err := GenDataset(5, 512, 4, 3)
	if err != nil {
		t.Fatalf("GenDataset: %v", err)
	}
	f, err := NewFleet(FleetConfig{
		Dataset:    ds,
		LayerSizes: []int{4, 12, 3},
		Workers:    2,
		TotalBatch: 16,
		LR:         0.05,
		Momentum:   0.9,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()
	for i := 0; i < 10; i++ {
		if _, err := f.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if !f.ReplicasConsistent() {
		t.Fatal("fleet replicas inconsistent")
	}
}

func TestPublicAPIEngines(t *testing.T) {
	st, err := NewStaticEngine(1, []int{4, 8, 3}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewStaticEngine: %v", err)
	}
	dy, err := NewDynamicEngine(1, [][]int{{4, 8, 3}}, 0.1, 0.9)
	if err != nil {
		t.Fatalf("NewDynamicEngine: %v", err)
	}
	var engines []Engine = []Engine{st, dy}
	ds, err := GenDataset(2, 128, 4, 3)
	if err != nil {
		t.Fatalf("GenDataset: %v", err)
	}
	x, y, err := ds.Batch(0, 64)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	for _, e := range engines {
		if _, err := e.Step(x, y, 0.05); err != nil {
			t.Fatalf("%s Step: %v", e.Kind(), err)
		}
	}
}

func TestPublicAPIGeometryConfig(t *testing.T) {
	data, err := EncodeGeometry(DefaultGeometry())
	if err != nil {
		t.Fatalf("EncodeGeometry: %v", err)
	}
	g, err := ParseGeometry(data)
	if err != nil {
		t.Fatalf("ParseGeometry: %v", err)
	}
	c, err := NewCluster(g)
	if err != nil || c.NumGPUs() != 64 {
		t.Fatalf("round-trip cluster = %v, %v", c.NumGPUs(), err)
	}
}

func TestPublicAPISnapshot(t *testing.T) {
	ds, err := GenDataset(9, 256, 4, 3)
	if err != nil {
		t.Fatalf("GenDataset: %v", err)
	}
	job, err := NewLiveJob(LiveConfig{
		Dataset: ds, LayerSizes: []int{4, 8, 3},
		Workers: 2, TotalBatch: 16, LR: 0.05, Momentum: 0.9, Seed: 9,
	})
	if err != nil {
		t.Fatalf("NewLiveJob: %v", err)
	}
	defer job.Close()
	for i := 0; i < 5; i++ {
		if _, err := job.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	var snap *Snapshot
	snap, err = job.Snapshot()
	if err != nil || snap.Iteration != 5 {
		t.Fatalf("Snapshot = %+v, %v", snap, err)
	}
	if err := job.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
}
